//! The campaign service: TCP accept loop + request routing.
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /figures` | figure-registry listing (id, title, panels, cells, digest) |
//! | `POST /campaigns` | submit `{"figure": id}`, `{"spec": {...}}` or `{"campaign": {...}}`, optionally with `"tenant"` and `"priority"` |
//! | `GET /campaigns/<digest>` | job status, cell progress + service counters |
//! | `GET /campaigns/<digest>/result?format=md\|json\|csv` | rendered result (ETag / If-None-Match aware) |
//! | `GET /campaigns/<digest>/result?partial=1` | merged-so-far prefix (`206`) or the final result (`200`), with `x-cells-done`/`x-cells-total` |
//! | `GET /metrics` | queue + cell depth, worker occupancy, per-tenant served cells, store + connection counters, Minst/s |
//!
//! Submissions answer `200` when the digest is already done (cache hit),
//! `202` when queued/running/coalesced, `429` when the bounded queue is
//! full, and `400` for malformed or invalid campaigns. Results answer
//! `409` while the job is still in flight (unless `partial=1` asks for
//! the merged-so-far prefix), and `304` when the client's
//! `If-None-Match` matches the digest-derived `ETag`.
//!
//! Connections are persistent: each handler thread loops over requests
//! until the peer asks for `Connection: close`, idles past the timeout
//! (answered with `408`), or errors. A server-wide connection cap sheds
//! load with a clean `503` instead of letting accept-queue growth hide
//! saturation.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pythia_obs::logger::Level;
use pythia_obs::metrics::Histogram;
use pythia_obs::prom::PromText;
use pythia_stats::json::{parse, Json};
use pythia_sweep::codec::{is_digest, Campaign};
use pythia_sweep::ResultStore;

use crate::http::{write_response, Request, RequestError, RequestReader, Response, IO_TIMEOUT};
use crate::journal::{Journal, DEFAULT_TENANT};
use crate::obs::{self, ServeObs};
use crate::scheduler::{JobStatus, Scheduler, SubmitError};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker slots accepting campaigns (0 allowed for tests).
    pub workers: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// Simulation parallelism per worker slot. Cells are the scheduling
    /// unit, so the service runs `workers * sim_threads` cell workers —
    /// the same peak parallelism the pre-cell scheduler had.
    pub sim_threads: usize,
    /// On-disk result store directory (`None` = in-memory only).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Byte budget for the result store (`None` = unbounded). Ignored
    /// without a `cache_dir`.
    pub cache_max_bytes: Option<u64>,
    /// Maximum simultaneously-open connections; excess connects get 503.
    pub max_conns: usize,
    /// How long a kept-alive connection may idle before a 408 + close.
    pub idle_timeout: Duration,
    /// Journal file for crash-safe job recovery. Defaults to
    /// `journal.jsonl` inside `cache_dir` when unset; `None` with no
    /// `cache_dir` means no journal.
    pub journal: Option<std::path::PathBuf>,
    /// Structured-log threshold (JSONL on stderr). The library default
    /// is `Level::Warn` (quiet for embedded/test use); the CLI defaults
    /// `--log-level` to `info`.
    pub log_level: Level,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_cap: 64,
            sim_threads: 1,
            cache_dir: None,
            cache_max_bytes: None,
            max_conns: 64,
            idle_timeout: IO_TIMEOUT,
            journal: None,
            log_level: Level::Warn,
        }
    }
}

/// Connection-level counters for `/metrics`.
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Connections currently open.
    pub active: AtomicUsize,
    /// Connections accepted (including ones later shed).
    pub accepted: AtomicU64,
    /// Connections shed with 503 because the cap was reached.
    pub rejected: AtomicU64,
    /// Requests served across all connections.
    pub requests: AtomicU64,
    /// Connections closed with 408 after idling out.
    pub timeouts: AtomicU64,
}

impl ConnStats {
    /// Snapshot as a JSON object (the `connections` key of `/metrics`).
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Json::obj()
            .set("active", self.active.load(Ordering::Relaxed) as u64)
            .set("accepted", get(&self.accepted))
            .set("rejected", get(&self.rejected))
            .set("requests", get(&self.requests))
            .set("timeouts", get(&self.timeouts))
    }
}

/// Decrements the active-connection gauge when a handler exits, however
/// it exits.
struct ActiveGuard(Arc<ConnStats>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound, ready-to-serve campaign service.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    conns: Arc<ConnStats>,
    max_conns: usize,
    idle_timeout: Duration,
}

/// Handle to a server running on a background thread (test harness /
/// embedded use).
pub struct ServerHandle {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    conns: Arc<ConnStats>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared scheduler (counters, direct status checks).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The connection counters.
    pub fn conn_stats(&self) -> &ConnStats {
        &self.conns
    }
}

impl Server {
    /// Binds the service.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the cache
    /// directory/journal cannot be opened.
    pub fn bind(addr: &str, config: &ServeConfig) -> Result<Self, String> {
        let obs = Arc::new(ServeObs::new(config.log_level));
        let store = match &config.cache_dir {
            None => None,
            Some(dir) => Some(ResultStore::open_bounded(
                dir.clone(),
                config.cache_max_bytes,
            )?),
        };
        let journal_path = config.journal.clone().or_else(|| {
            config
                .cache_dir
                .as_ref()
                .map(|dir| dir.join("journal.jsonl"))
        });
        let journal = match journal_path {
            None => None,
            Some(path) => Some(Journal::open_with_obs(path, Arc::clone(&obs))?),
        };
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let scheduler = Arc::new(Scheduler::start_with_obs(
            config.workers * config.sim_threads.max(1),
            config.queue_cap,
            store,
            journal,
            obs,
        ));
        Ok(Self {
            listener,
            scheduler,
            conns: Arc::new(ConnStats::default()),
            max_conns: config.max_conns.max(1),
            idle_timeout: config.idle_timeout,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))
    }

    /// Serves forever on the calling thread, one handler thread per
    /// connection. Only returns on an accept error.
    ///
    /// # Errors
    ///
    /// Returns a message if the listener fails.
    pub fn serve_forever(self) -> Result<(), String> {
        for conn in self.listener.incoming() {
            let stream = conn.map_err(|e| format!("accept: {e}"))?;
            self.conns.accepted.fetch_add(1, Ordering::Relaxed);
            if self.conns.active.load(Ordering::Relaxed) >= self.max_conns {
                self.conns.rejected.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || reject_connection(stream));
                continue;
            }
            // Claim the slot in the accept loop, not the handler thread,
            // so a connect burst cannot overshoot the cap before the
            // handlers get scheduled.
            self.conns.active.fetch_add(1, Ordering::Relaxed);
            let scheduler = Arc::clone(&self.scheduler);
            let conns = Arc::clone(&self.conns);
            let idle = self.idle_timeout;
            std::thread::spawn(move || {
                let _guard = ActiveGuard(Arc::clone(&conns));
                handle_connection(&scheduler, &conns, stream, idle);
            });
        }
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a handle
    /// (the thread is detached; dropping the handle leaves it serving, so
    /// this is for tests and embedded smoke use).
    ///
    /// # Errors
    ///
    /// Returns a message if the socket address cannot be read.
    pub fn spawn(self) -> Result<ServerHandle, String> {
        let addr = self.local_addr()?;
        let scheduler = Arc::clone(&self.scheduler);
        let conns = Arc::clone(&self.conns);
        let obs = Arc::clone(scheduler.obs());
        std::thread::spawn(move || {
            if let Err(e) = self.serve_forever() {
                obs.logger()
                    .error("server", "accept loop stopped", &[("error", e)]);
            }
        });
        Ok(ServerHandle {
            addr,
            scheduler,
            conns,
        })
    }
}

/// Sheds a connection over the cap with a 503 and closes it.
fn reject_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = error_response(503, "connection limit reached, retry later");
    let _ = write_response(&mut stream, &response, false);
}

fn handle_connection(
    scheduler: &Scheduler,
    conns: &ConnStats,
    mut stream: TcpStream,
    idle_timeout: Duration,
) {
    if stream.set_read_timeout(Some(idle_timeout)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let mut reader = RequestReader::new();
    loop {
        match reader.read_request(&mut stream) {
            Ok(request) => {
                conns.requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = !request.close;
                let started = std::time::Instant::now();
                let response = route(scheduler, conns, &request);
                scheduler.obs().record_request(
                    obs::route_key(&request.method, &request.path),
                    started.elapsed().as_micros() as u64,
                    response.body.len() as u64,
                );
                if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(RequestError::Closed) => return,
            Err(RequestError::Timeout) => {
                conns.timeouts.fetch_add(1, Ordering::Relaxed);
                let response = error_response(408, "idle timeout waiting for a request");
                let _ = write_response(&mut stream, &response, false);
                return;
            }
            Err(RequestError::TooLarge(e)) => {
                let _ = write_response(&mut stream, &error_response(413, &e), false);
                return;
            }
            Err(RequestError::Malformed(e)) => {
                let message = format!("bad request: {e}");
                let _ = write_response(&mut stream, &error_response(400, &message), false);
                return;
            }
            Err(RequestError::Io(e)) => {
                scheduler.obs().logger().warn(
                    "server",
                    "dropping connection",
                    &[("error", e.to_string())],
                );
                return;
            }
        }
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, Json::obj().set("error", message).render_pretty())
}

/// Routes one request (exposed for in-process tests).
pub fn route(scheduler: &Scheduler, conns: &ConnStats, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["figures"]) => figures_response(),
        ("GET", ["metrics"]) => match request.query("format") {
            Some("prom") => metrics_prom_response(scheduler, conns),
            _ => metrics_response(scheduler, conns),
        },
        ("POST", ["campaigns"]) => submit(scheduler, &request.body),
        ("GET", ["campaigns", digest]) => status(scheduler, digest),
        ("GET", ["campaigns", digest, "result"]) => result(
            scheduler,
            digest,
            request.query("format").unwrap_or("json"),
            request.header("if-none-match"),
            request.query("partial") == Some("1"),
        ),
        ("POST", _) | ("GET", _) => error_response(404, "no such route"),
        _ => error_response(405, "method not allowed"),
    }
}

fn figures_response() -> Response {
    // Expanding ~20 registry grids and digesting their canonical JSON is
    // milliseconds of CPU per call, and the listing is constant for the
    // process lifetime (the budget scale is fixed at startup) — render once.
    static LISTING: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    let body = LISTING.get_or_init(|| {
        let list: Vec<Json> = pythia_bench::figures::registry()
            .iter()
            .map(|def| {
                let campaign = pythia_bench::figures::campaign(def.id)
                    .expect("registry entries resolve themselves");
                Json::obj()
                    .set("id", def.id)
                    .set("title", def.title)
                    .set("panels", campaign.panels.len())
                    .set("cells", campaign.cell_count())
                    .set("digest", campaign.digest())
            })
            .collect();
        Json::obj().set("figures", Json::Arr(list)).render_pretty()
    });
    Response::json(200, body.clone())
}

/// Builds the `/metrics` snapshot: queue, cell gauges, workers,
/// scheduler counters, per-tenant served cells, store occupancy,
/// connection gauges, and aggregate simulation throughput (Minst/s).
fn metrics_response(scheduler: &Scheduler, conns: &ConnStats) -> Response {
    let (depth, cap) = scheduler.queue_depth();
    let (cells_queued, cells_in_flight) = scheduler.cell_depth();
    let (busy, total) = scheduler.occupancy();
    let (instructions, wall_seconds) = scheduler.sim_totals();
    let minst_per_sec = if wall_seconds > 0.0 {
        instructions as f64 / wall_seconds / 1e6
    } else {
        0.0
    };
    let store = match scheduler.store() {
        None => Json::obj().set("enabled", false),
        Some(store) => {
            let mut obj = Json::obj()
                .set("enabled", true)
                .set("hits", store.stats().hits.load(Ordering::Relaxed))
                .set("misses", store.stats().misses.load(Ordering::Relaxed))
                .set("stored", store.stats().stored.load(Ordering::Relaxed))
                .set("evicted", store.stats().evicted.load(Ordering::Relaxed))
                .set("bytes_used", store.bytes_used());
            obj = match store.max_bytes() {
                Some(max) => obj.set("max_bytes", max),
                None => obj.set("max_bytes", Json::Null),
            };
            obj
        }
    };
    let counters = scheduler.counters();
    let mut tenants = Json::obj();
    for (key, served) in scheduler.tenants() {
        tenants = tenants.set(&key, served);
    }
    let body = Json::obj()
        .set("queue", Json::obj().set("depth", depth).set("cap", cap))
        .set(
            "cells",
            Json::obj()
                .set("queued", cells_queued)
                .set("in_flight", cells_in_flight)
                .set("executed", counters.cells_executed.load(Ordering::Relaxed))
                .set("replayed", counters.cells_replayed.load(Ordering::Relaxed)),
        )
        .set("workers", Json::obj().set("busy", busy).set("total", total))
        .set("counters", counters.to_json())
        .set("tenants", tenants)
        .set("store", store)
        .set("connections", conns.to_json())
        .set(
            "throughput",
            Json::obj()
                .set("sim_instructions", instructions)
                .set("sim_wall_seconds", Json::Num(wall_seconds))
                .set("minst_per_sec", Json::Num(minst_per_sec)),
        )
        .set("latency", latency_json(scheduler))
        .render_pretty();
    Response::json(200, body)
}

/// Percentile summary of one histogram as JSON (`_us` units come from
/// the histogram's own name/help).
fn summary_json(h: &Histogram) -> Json {
    let s = h.summary();
    Json::obj()
        .set("count", s.count)
        .set("sum", s.sum)
        .set("p50", s.p50)
        .set("p95", s.p95)
        .set("p99", s.p99)
        .set("max", s.max)
}

/// The `latency` key of `/metrics`: per-route request latency plus the
/// scheduler's cell queue-wait/execution and journal fsync summaries
/// (all in microseconds).
fn latency_json(scheduler: &Scheduler) -> Json {
    let obs = scheduler.obs();
    let mut routes = Json::obj();
    for key in obs::ROUTE_KEYS {
        if let Some(h) = obs.route_latency(key) {
            routes = routes.set(key, summary_json(h));
        }
    }
    Json::obj()
        .set("routes_us", routes)
        .set("cell_queue_wait_us", summary_json(&obs.cell_queue_wait_us))
        .set("cell_execution_us", summary_json(&obs.cell_execution_us))
        .set("journal_fsync_us", summary_json(&obs.journal_fsync_us))
}

/// `GET /metrics?format=prom`: the Prometheus text exposition (0.0.4)
/// view — the registry's histograms plus the scheduler, store and
/// connection counters as explicit families. The output always passes
/// [`pythia_obs::prom::lint`] (pinned by tests and the CI serve job).
fn metrics_prom_response(scheduler: &Scheduler, conns: &ConnStats) -> Response {
    let mut t = PromText::new();
    t.registry(scheduler.obs().registry());

    let (depth, cap) = scheduler.queue_depth();
    t.family(
        "pythia_queue_depth",
        "Campaigns holding a ready-queue slot",
        "gauge",
    );
    t.sample("pythia_queue_depth", &[], depth as f64);
    t.family("pythia_queue_cap", "Ready-queue capacity", "gauge");
    t.sample("pythia_queue_cap", &[], cap as f64);

    let (cells_queued, cells_in_flight) = scheduler.cell_depth();
    t.family(
        "pythia_cells_queued",
        "Unclaimed cells across unfinished jobs",
        "gauge",
    );
    t.sample("pythia_cells_queued", &[], cells_queued as f64);
    t.family(
        "pythia_cells_in_flight",
        "Cells currently simulating",
        "gauge",
    );
    t.sample("pythia_cells_in_flight", &[], cells_in_flight as f64);

    let (busy, total) = scheduler.occupancy();
    t.family(
        "pythia_workers_busy",
        "Workers simulating a cell right now",
        "gauge",
    );
    t.sample("pythia_workers_busy", &[], busy as f64);
    t.family("pythia_workers_total", "Configured worker threads", "gauge");
    t.sample("pythia_workers_total", &[], total as f64);

    let counters = scheduler.counters();
    let get = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64;
    t.family(
        "pythia_scheduler_events_total",
        "Monotonic scheduler counters by event",
        "counter",
    );
    for (event, value) in [
        ("submitted", get(&counters.submitted)),
        ("executed", get(&counters.executed)),
        ("cache_hits", get(&counters.cache_hits)),
        ("coalesced", get(&counters.coalesced)),
        ("completed", get(&counters.completed)),
        ("failed", get(&counters.failed)),
        ("rejected", get(&counters.rejected)),
        ("replayed", get(&counters.replayed)),
        ("cells_executed", get(&counters.cells_executed)),
        ("cells_replayed", get(&counters.cells_replayed)),
    ] {
        t.sample("pythia_scheduler_events_total", &[("event", event)], value);
    }

    let (hits, misses) = match scheduler.store() {
        None => (0.0, 0.0),
        Some(store) => (get(&store.stats().hits), get(&store.stats().misses)),
    };
    t.family(
        "pythia_store_hits_total",
        "Result-store lookup hits",
        "counter",
    );
    t.sample("pythia_store_hits_total", &[], hits);
    t.family(
        "pythia_store_misses_total",
        "Result-store lookup misses",
        "counter",
    );
    t.sample("pythia_store_misses_total", &[], misses);

    t.family(
        "pythia_connections_active",
        "Connections currently open",
        "gauge",
    );
    t.sample(
        "pythia_connections_active",
        &[],
        conns.active.load(Ordering::Relaxed) as f64,
    );
    t.family(
        "pythia_connections_total",
        "Monotonic connection counters by event",
        "counter",
    );
    for (event, value) in [
        ("accepted", get(&conns.accepted)),
        ("rejected", get(&conns.rejected)),
        ("requests", get(&conns.requests)),
        ("timeouts", get(&conns.timeouts)),
    ] {
        t.sample("pythia_connections_total", &[("event", event)], value);
    }

    let (instructions, wall_seconds) = scheduler.sim_totals();
    t.family(
        "pythia_sim_instructions_total",
        "Instructions simulated by this process",
        "counter",
    );
    t.sample("pythia_sim_instructions_total", &[], instructions as f64);
    t.family(
        "pythia_sim_wall_seconds_total",
        "Wall time spent simulating cells",
        "counter",
    );
    t.sample("pythia_sim_wall_seconds_total", &[], wall_seconds);

    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: t.finish().into_bytes(),
        headers: Vec::new(),
    }
}

/// Decodes a submission body into a campaign: `{"figure": id}` resolves
/// through the figure registry, `{"spec": {...}}` wraps one canonical
/// spec, `{"campaign": {...}}` is the full canonical form.
fn campaign_of(json: &Json) -> Result<Campaign, String> {
    match (json.get("figure"), json.get("spec"), json.get("campaign")) {
        (Some(fig), None, None) => {
            let id = fig.as_str().ok_or("\"figure\" must be a string")?;
            pythia_bench::figures::campaign(id)
                .ok_or_else(|| format!("unknown figure {id:?}; see GET /figures"))
        }
        (None, Some(spec), None) => {
            Ok(Campaign::single(pythia_sweep::codec::spec_from_json(spec)?))
        }
        (None, None, Some(campaign)) => Campaign::from_json(campaign),
        _ => Err("body must have exactly one of \"figure\", \"spec\", \"campaign\"".into()),
    }
}

/// Decodes the optional scheduling fields of a submission body:
/// `"tenant"` (submitter key for fair queueing, default `"default"`) and
/// `"priority"` (weighted-round-robin quantum, clamped by the scheduler
/// to `1..=`[`crate::scheduler::MAX_PRIORITY`]).
fn submit_params(json: &Json) -> Result<(String, u64), String> {
    let tenant = match json.get("tenant") {
        None => DEFAULT_TENANT.to_string(),
        Some(t) => t.as_str().ok_or("\"tenant\" must be a string")?.to_string(),
    };
    let priority = match json.get("priority") {
        None => 1,
        Some(p) => p
            .as_u64()
            .ok_or("\"priority\" must be a non-negative integer")?,
    };
    Ok((tenant, priority))
}

fn submit(scheduler: &Scheduler, body: &[u8]) -> Response {
    let json = match std::str::from_utf8(body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(parse)
    {
        Ok(json) => json,
        Err(e) => return error_response(400, &e),
    };
    let campaign = match campaign_of(&json) {
        Ok(c) => c,
        Err(e) => return error_response(400, &e),
    };
    let (tenant, priority) = match submit_params(&json) {
        Ok(params) => params,
        Err(e) => return error_response(400, &e),
    };
    let name = campaign.name.clone();
    match scheduler.submit_as(campaign, &tenant, priority) {
        Ok(submission) => {
            let status = if matches!(submission.status, JobStatus::Done(_) | JobStatus::Failed(_)) {
                200
            } else {
                202
            };
            let (done, total) = scheduler.progress(&submission.digest).unwrap_or((0, 0));
            Response::json(
                status,
                Json::obj()
                    .set("digest", submission.digest.as_str())
                    .set("name", name)
                    .set("status", submission.status.label())
                    .set("cached", submission.cached)
                    .set("coalesced", submission.coalesced)
                    .set("cells", Json::obj().set("done", done).set("total", total))
                    .render_pretty(),
            )
        }
        Err(SubmitError::Invalid(e)) => error_response(400, &e),
        Err(SubmitError::Busy { queue_cap }) => Response::json(
            429,
            Json::obj()
                .set("error", "job queue full, retry later")
                .set("queue_cap", queue_cap)
                .render_pretty(),
        ),
    }
}

fn status(scheduler: &Scheduler, digest: &str) -> Response {
    if !is_digest(digest) {
        return error_response(400, &format!("malformed digest {digest:?}"));
    }
    match scheduler.status(digest) {
        None => error_response(404, &format!("unknown campaign {digest:?}")),
        Some((name, job_status)) => {
            let (queued, queue_cap) = scheduler.queue_depth();
            let (done, total) = scheduler.progress(digest).unwrap_or((0, 0));
            let mut out = Json::obj()
                .set("digest", digest)
                .set("name", name)
                .set("status", job_status.label());
            if let JobStatus::Failed(e) = &job_status {
                out = out.set("error", e.as_str());
            }
            Response::json(
                200,
                out.set("cells", Json::obj().set("done", done).set("total", total))
                    .set(
                        "queue",
                        Json::obj().set("depth", queued).set("cap", queue_cap),
                    )
                    .set("counters", scheduler.counters().to_json())
                    .render_pretty(),
            )
        }
    }
}

/// The `ETag` for a rendered result: digest plus render format. Strong
/// validation is sound because identical digests render identical bytes
/// (bit-deterministic sims, canonical encoding).
fn result_etag(digest: &str, format: &str) -> String {
    format!("\"{digest}.{format}\"")
}

/// Whether an `If-None-Match` header matches `etag` (token list; `*`
/// matches anything).
fn if_none_match_hits(header: &str, etag: &str) -> bool {
    header.split(',').any(|token| {
        let token = token.trim();
        let token = token.strip_prefix("W/").unwrap_or(token);
        token == "*" || token == etag
    })
}

fn result_content_type(format_key: &str) -> &'static str {
    match format_key {
        "json" => "application/json",
        "csv" => "text/csv; charset=utf-8",
        _ => "text/markdown; charset=utf-8",
    }
}

fn result(
    scheduler: &Scheduler,
    digest: &str,
    format: &str,
    if_none_match: Option<&str>,
    partial: bool,
) -> Response {
    if !is_digest(digest) {
        return error_response(400, &format!("malformed digest {digest:?}"));
    }
    if partial {
        return partial_result(scheduler, digest, format);
    }
    match scheduler.status(digest) {
        None => error_response(404, &format!("unknown campaign {digest:?}")),
        Some((_, JobStatus::Failed(e))) => error_response(409, &format!("campaign failed: {e}")),
        Some((_, JobStatus::Queued | JobStatus::Running)) => error_response(
            409,
            "campaign not done yet; poll GET /campaigns/<digest> or pass ?partial=1",
        ),
        Some((_, JobStatus::Done(result))) => {
            // Normalize aliases so "md" and "markdown" share one ETag.
            let format_key = if format == "markdown" { "md" } else { format };
            let etag = result_etag(digest, format_key);
            if let Some(header) = if_none_match {
                if if_none_match_hits(header, &etag) {
                    return Response::text(304, "").with_header("etag", etag);
                }
            }
            match result.render(format) {
                Err(e) => error_response(400, &e),
                Ok(rendered) => Response {
                    status: 200,
                    content_type: result_content_type(format_key),
                    body: rendered.into_bytes(),
                    headers: vec![("etag".into(), etag)],
                },
            }
        }
    }
}

/// `?partial=1`: the merged-so-far prefix of a running campaign (`206`)
/// or the final artifact (`200` with its `ETag`), both carrying
/// `x-cells-done` / `x-cells-total`. Every partial renders the same
/// format the final result uses, and its rows are a prefix of the final
/// row order — a polling client can trust every row it has already seen.
fn partial_result(scheduler: &Scheduler, digest: &str, format: &str) -> Response {
    match scheduler.partial(digest) {
        None => match scheduler.status(digest) {
            Some((_, JobStatus::Failed(e))) => {
                error_response(409, &format!("campaign failed: {e}"))
            }
            _ => error_response(404, &format!("unknown campaign {digest:?}")),
        },
        Some(snapshot) => match snapshot.result.render(format) {
            Err(e) => error_response(400, &e),
            Ok(rendered) => {
                let format_key = if format == "markdown" { "md" } else { format };
                let mut response = Response {
                    status: if snapshot.complete { 200 } else { 206 },
                    content_type: result_content_type(format_key),
                    body: rendered.into_bytes(),
                    headers: Vec::new(),
                };
                if snapshot.complete {
                    response = response.with_header("etag", result_etag(digest, format_key));
                }
                response
                    .with_header("x-cells-done", snapshot.done.to_string())
                    .with_header("x-cells-total", snapshot.total.to_string())
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;

    fn req(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.to_vec(),
            close: false,
        }
    }

    #[test]
    fn routing_edges() {
        let scheduler = Scheduler::start(0, 2, None, None);
        let conns = ConnStats::default();
        assert_eq!(
            route(&scheduler, &conns, &req("GET", "/nope", b"")).status,
            404
        );
        assert_eq!(
            route(&scheduler, &conns, &req("PUT", "/figures", b"")).status,
            405
        );
        assert_eq!(
            route(&scheduler, &conns, &req("POST", "/campaigns", b"not json")).status,
            400
        );
        assert_eq!(
            route(
                &scheduler,
                &conns,
                &req("POST", "/campaigns", b"{\"figure\":\"nope\"}")
            )
            .status,
            400
        );
        assert_eq!(
            route(
                &scheduler,
                &conns,
                &req("GET", "/campaigns/0123456789abcdef", b"")
            )
            .status,
            404
        );
        assert_eq!(
            route(&scheduler, &conns, &req("GET", "/campaigns/zzz", b"")).status,
            400
        );
        let figures = route(&scheduler, &conns, &req("GET", "/figures", b""));
        assert_eq!(figures.status, 200);
        let listing = String::from_utf8(figures.body).expect("utf-8");
        assert!(listing.contains("fig09"), "{listing}");
        let metrics = route(&scheduler, &conns, &req("GET", "/metrics", b""));
        assert_eq!(metrics.status, 200);
        let parsed = parse(&String::from_utf8(metrics.body).expect("utf-8")).expect("json");
        assert_eq!(
            parsed
                .get("queue")
                .and_then(|q| q.get("cap"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("store")
                .and_then(|s| s.get("enabled"))
                .and_then(Json::as_bool),
            Some(false)
        );
        scheduler.shutdown();
    }

    #[test]
    fn if_none_match_token_matching() {
        let etag = result_etag("0123456789abcdef", "json");
        assert!(if_none_match_hits(&etag, &etag));
        assert!(if_none_match_hits("*", &etag));
        assert!(if_none_match_hits(&format!("\"other\", {etag}"), &etag));
        assert!(if_none_match_hits(&format!("W/{etag}"), &etag));
        assert!(!if_none_match_hits("\"other\"", &etag));
    }
}
