//! Cell-granular job scheduling: a per-tenant fair ready queue, a worker
//! pool that pulls individual grid cells, in-flight dedup, a
//! content-addressed cache, and a crash-safe journal in front of the
//! simulations.
//!
//! Every submission is keyed by its campaign digest
//! ([`Campaign::digest`]). The scheduler guarantees that a digest costs at
//! most one simulation per process lifetime:
//!
//! * a digest already **done** in memory is served instantly,
//! * a digest present in the on-disk [`ResultStore`] is loaded, not run,
//! * a digest currently **queued/running** is *coalesced* — the new
//!   submission attaches to the in-flight job instead of enqueuing a copy,
//! * only a never-seen digest occupies a queue slot, and a full queue
//!   rejects the submission ([`SubmitError::Busy`] → HTTP 429).
//!
//! # Cell-level scheduling
//!
//! A campaign is expanded up front into a [`CampaignPlan`] — an ordered
//! set of independent simulation cells — and **cells**, not campaigns,
//! are what workers pull. One big figure no longer monopolizes a worker
//! while the pool idles: campaigns from many tenants interleave cell by
//! cell. Tenants (submitter keys) are served by weighted round-robin:
//! each visit to a tenant grants a quantum of `priority` cells from its
//! front campaign, then the cursor moves on, so a tenant's backlog never
//! starves the others. Because simulations are bit-deterministic and
//! [`CampaignPlan::merge_cells`] reassembles reports in grid order, the
//! served artifact is byte-identical to a monolithic run no matter how
//! execution interleaves.
//!
//! When a [`Journal`] is attached, every fresh enqueue is recorded before
//! the submission returns and every finished cell is recorded with its
//! full report. On startup unfinished journal entries are replayed:
//! digests whose artifact already landed in the store are marked done,
//! everything else is requeued **minus its journaled cells** — only the
//! cells that had not finished re-execute — and the journal is compacted
//! down to the survivors.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pythia_sim::stats::SimReport;
use pythia_stats::json::Json;
use pythia_sweep::codec::Campaign;
use pythia_sweep::{plan_campaign, CampaignPlan, ResultStore, SweepResult};

use crate::journal::{Journal, PendingJob, DEFAULT_TENANT};
use crate::obs::ServeObs;

/// Upper bound on the accepted `priority` weight (quantum size): enough
/// spread to express "urgent", small enough that one tenant cannot
/// configure itself into a de-facto monopoly.
pub const MAX_PRIORITY: u64 = 100;

/// Lifecycle of one campaign job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// At least one of its cells has been claimed by a worker.
    Running,
    /// Finished; the stripped result is held in memory (and on disk when a
    /// cache directory is configured).
    Done(Arc<SweepResult>),
    /// Validation passed but execution failed (should not happen for
    /// validated specs; kept for fail-soft behaviour).
    Failed(String),
}

impl JobStatus {
    /// The wire label (`"queued"`, `"running"`, `"done"`, `"failed"`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// What a submission observed.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The campaign digest (the job id).
    pub digest: String,
    /// Status right after this submission.
    pub status: JobStatus,
    /// Whether the result came from cache (memory or disk) rather than a
    /// fresh simulation scheduled by *some* submission of this digest.
    pub cached: bool,
    /// Whether this submission coalesced onto an in-flight job.
    pub coalesced: bool,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job queue is full — retry later (HTTP 429).
    Busy {
        /// Configured queue capacity at rejection time.
        queue_cap: usize,
    },
    /// The campaign failed validation (HTTP 400).
    Invalid(String),
}

/// A snapshot of a job's merged-so-far result.
#[derive(Debug)]
pub struct Partial {
    /// The rows computable right now — the longest prefix of the final
    /// row order whose reports exist; the complete artifact once the job
    /// is done.
    pub result: Arc<SweepResult>,
    /// Completed cells.
    pub done: usize,
    /// Total cells in the plan.
    pub total: usize,
    /// Whether `result` is the final artifact.
    pub complete: bool,
}

/// Monotonic service counters, readable without any lock.
#[derive(Debug, Default)]
pub struct Counters {
    /// Campaigns accepted (every non-error submission).
    pub submitted: AtomicU64,
    /// Campaigns actually simulated by this process's workers.
    pub executed: AtomicU64,
    /// Submissions served from the in-memory done map or the disk store.
    pub cache_hits: AtomicU64,
    /// Submissions coalesced onto a queued/running job.
    pub coalesced: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs that failed during execution.
    pub failed: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected: AtomicU64,
    /// Jobs recovered from the journal at startup (requeued or resolved
    /// from the disk store).
    pub replayed: AtomicU64,
    /// Individual cells simulated by this process's workers.
    pub cells_executed: AtomicU64,
    /// Cells restored from journal records at startup instead of re-run.
    pub cells_replayed: AtomicU64,
}

impl Counters {
    /// Snapshot as a JSON object (the `counters` key of status responses).
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Json::obj()
            .set("submitted", get(&self.submitted))
            .set("executed", get(&self.executed))
            .set("cache_hits", get(&self.cache_hits))
            .set("coalesced", get(&self.coalesced))
            .set("completed", get(&self.completed))
            .set("failed", get(&self.failed))
            .set("rejected", get(&self.rejected))
            .set("replayed", get(&self.replayed))
            .set("cells_executed", get(&self.cells_executed))
            .set("cells_replayed", get(&self.cells_replayed))
    }
}

/// The execution state of a not-yet-finished job. Dropped on completion
/// so finished jobs don't pin plans or report sets in memory.
struct Work {
    plan: Arc<CampaignPlan>,
    /// When the job entered the ready queue — each cell's queue wait
    /// (enqueue → worker claim) is measured against it.
    enqueued_at: std::time::Instant,
    /// One slot per planned cell; filled as cells complete (in any
    /// order — workers race, replay pre-fills).
    slots: Vec<Option<SimReport>>,
    /// Claim cursor: every slot before it is claimed or filled. Monotonic.
    cursor: usize,
    /// Slots handed to a worker or pre-filled by replay.
    claimed: usize,
    /// Completed cells (executed here or replayed).
    done: usize,
    /// Cells currently being simulated by a worker.
    in_flight: usize,
}

struct Job {
    /// Campaign name, kept for status responses after completion.
    name: String,
    /// Submitter key, for fair queueing and the per-tenant counters.
    tenant: String,
    /// Weighted-round-robin quantum.
    priority: u64,
    /// Planned cells (fixed at submission).
    cells_total: usize,
    /// Completed cells; mirrors `work` while running, stays at total
    /// after completion.
    cells_done: usize,
    status: JobStatus,
    work: Option<Work>,
}

/// One tenant's ready queue (campaign digests with unclaimed cells).
struct TenantQueue {
    key: String,
    ready: VecDeque<String>,
    served_cells: u64,
}

#[derive(Default)]
struct State {
    jobs: HashMap<String, Job>,
    /// Tenants in first-seen order; the round-robin universe.
    tenants: Vec<TenantQueue>,
    /// Round-robin cursor over `tenants`.
    rr_pos: usize,
    /// Cells left in the current tenant's quantum (0 = refresh on next
    /// claim from it).
    rr_credits: u64,
}

impl State {
    /// Campaigns currently holding a ready-queue slot (the 429 gauge).
    fn ready_campaigns(&self) -> usize {
        self.tenants.iter().map(|t| t.ready.len()).sum()
    }

    fn enqueue(&mut self, tenant: &str, digest: String) {
        match self.tenants.iter_mut().find(|t| t.key == tenant) {
            Some(t) => t.ready.push_back(digest),
            None => self.tenants.push(TenantQueue {
                key: tenant.to_string(),
                ready: VecDeque::from([digest]),
                served_cells: 0,
            }),
        }
    }
}

/// What a worker pulled from the ready queue.
struct Claim {
    digest: String,
    /// Flat index into the plan's job list.
    flat: usize,
    plan: Arc<CampaignPlan>,
    /// Whether this claim moved the job from queued to running (first
    /// cell claimed — the `started` journal record).
    first: bool,
    /// How long the cell sat in the ready queue before this claim.
    queue_wait: std::time::Duration,
}

/// Claims the next cell under weighted round-robin over tenants.
///
/// Each visit to a tenant grants up to `priority` consecutive cells from
/// its front campaign before the cursor advances; idle tenants are
/// skipped without consuming their quantum. Within a tenant, campaigns
/// are FIFO; within a campaign, cells are claimed in flat plan order
/// (skipping slots pre-filled by journal replay).
fn claim_cell(state: &mut State) -> Option<Claim> {
    let n = state.tenants.len();
    for _ in 0..n {
        let ti = state.rr_pos % n;
        // Try this tenant's front campaigns (popping exhausted ones).
        let claim = loop {
            let Some(digest) = state.tenants[ti].ready.front().cloned() else {
                break None;
            };
            let job = state.jobs.get_mut(&digest).expect("ready digest has a job");
            let work = job.work.as_mut().expect("ready job has work");
            while work.cursor < work.slots.len() && work.slots[work.cursor].is_some() {
                work.cursor += 1;
            }
            if work.cursor >= work.slots.len() {
                // Every cell is claimed or filled: out of the ready queue.
                state.tenants[ti].ready.pop_front();
                continue;
            }
            let flat = work.cursor;
            work.cursor += 1;
            while work.cursor < work.slots.len() && work.slots[work.cursor].is_some() {
                work.cursor += 1;
            }
            work.claimed += 1;
            work.in_flight += 1;
            let first = matches!(job.status, JobStatus::Queued);
            if first {
                job.status = JobStatus::Running;
            }
            let plan = Arc::clone(&work.plan);
            let queue_wait = work.enqueued_at.elapsed();
            let priority = job.priority;
            if work.cursor >= work.slots.len() {
                state.tenants[ti].ready.pop_front();
            }
            break Some((
                Claim {
                    digest,
                    flat,
                    plan,
                    first,
                    queue_wait,
                },
                priority,
            ));
        };
        match claim {
            Some((claim, priority)) => {
                if state.rr_credits == 0 {
                    state.rr_credits = priority.max(1);
                }
                state.rr_credits -= 1;
                if state.rr_credits == 0 {
                    state.rr_pos = (ti + 1) % n;
                }
                return Some(claim);
            }
            None => {
                // Idle tenant: move on without consuming a quantum.
                state.rr_pos = (ti + 1) % n;
                state.rr_credits = 0;
            }
        }
    }
    None
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    job_finished: Condvar,
    queue_cap: usize,
    store: Option<ResultStore>,
    journal: Option<Journal>,
    counters: Counters,
    workers_total: usize,
    busy_workers: AtomicUsize,
    /// Total instructions simulated by this process (for Minst/s).
    sim_instructions: AtomicU64,
    /// Total simulation wall time in nanoseconds.
    sim_wall_nanos: AtomicU64,
    shutdown: AtomicBool,
    /// Shared observability bundle (logger + metric registry).
    obs: Arc<ServeObs>,
}

/// The campaign scheduler: owns the ready queues, the status map, and the
/// worker pool. Cloneable handle semantics come from wrapping it in an
/// `Arc` at the server layer.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts a scheduler with `workers` cell-worker threads, a ready
    /// queue bounded at `queue_cap` campaigns, an optional on-disk result
    /// store, and an optional crash-safe journal.
    ///
    /// Unfinished journal entries are replayed before the workers start:
    /// digests already resolvable from `store` are inserted as done,
    /// everything else is requeued (ignoring `queue_cap` — journaled work
    /// was already accepted once) with its journaled cells pre-filled,
    /// and the journal is compacted.
    ///
    /// `workers == 0` is permitted (jobs queue but never run) — useful for
    /// deterministic backpressure tests; the CLI clamps to ≥ 1.
    pub fn start(
        workers: usize,
        queue_cap: usize,
        store: Option<ResultStore>,
        journal: Option<Journal>,
    ) -> Self {
        Self::start_with_obs(
            workers,
            queue_cap,
            store,
            journal,
            Arc::new(ServeObs::default()),
        )
    }

    /// [`Scheduler::start`] with a shared observability bundle — the
    /// server passes the bundle its journal and connection handlers use,
    /// so every latency histogram lands in one registry.
    pub fn start_with_obs(
        workers: usize,
        queue_cap: usize,
        store: Option<ResultStore>,
        mut journal: Option<Journal>,
        obs: Arc<ServeObs>,
    ) -> Self {
        let pending = journal
            .as_mut()
            .map(Journal::take_pending)
            .unwrap_or_default();
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            job_finished: Condvar::new(),
            queue_cap: queue_cap.max(1),
            store,
            journal,
            counters: Counters::default(),
            workers_total: workers,
            busy_workers: AtomicUsize::new(0),
            sim_instructions: AtomicU64::new(0),
            sim_wall_nanos: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            obs,
        });

        if !pending.is_empty() {
            replay_pending(&inner, pending);
        }

        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Submits a campaign for the default tenant at baseline priority.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on validation failure, [`SubmitError::Busy`]
    /// when the queue is full.
    pub fn submit(&self, campaign: Campaign) -> Result<Submission, SubmitError> {
        self.submit_as(campaign, DEFAULT_TENANT, 1)
    }

    /// Submits a campaign under a tenant key with a weighted-round-robin
    /// `priority` (clamped to `1..=`[`MAX_PRIORITY`]). The tenant and
    /// priority bind to the *first* submission of a digest; coalescing
    /// resubmissions attach without changing them.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on validation failure, [`SubmitError::Busy`]
    /// when the queue is full.
    pub fn submit_as(
        &self,
        campaign: Campaign,
        tenant: &str,
        priority: u64,
    ) -> Result<Submission, SubmitError> {
        campaign.validate().map_err(SubmitError::Invalid)?;
        let digest = campaign.digest();
        let c = &self.inner.counters;
        let tenant = if tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            tenant
        };
        let priority = priority.clamp(1, MAX_PRIORITY);

        // Fast path: the digest is already known in this process.
        {
            let state = self.inner.state.lock().expect("scheduler lock");
            if let Some(hit) = Self::attach(c, &state, &digest) {
                return Ok(hit);
            }
        }

        // First sighting — expand the plan and probe the disk store
        // WITHOUT holding the lock (both touch potentially large data;
        // status polls and other submissions must not stall behind them).
        let plan = plan_campaign(&campaign.name, &campaign.panels).map_err(SubmitError::Invalid)?;
        let disk_hit = match &self.inner.store {
            None => None,
            Some(store) => match store.load(&digest) {
                Ok(hit) => hit,
                Err(e) => {
                    // A corrupt artifact must not take the digest down
                    // permanently: fall through and re-simulate.
                    self.inner.obs.logger().warn(
                        "scheduler",
                        "ignoring corrupt cache artifact",
                        &[("digest", digest.clone()), ("error", e)],
                    );
                    None
                }
            },
        };

        let mut state = self.inner.state.lock().expect("scheduler lock");
        // Re-check: a racing submission may have inserted meanwhile.
        if let Some(hit) = Self::attach(c, &state, &digest) {
            return Ok(hit);
        }

        let total = plan.job_count();
        if let Some(result) = disk_hit {
            let status = JobStatus::Done(Arc::new(result));
            state.jobs.insert(
                digest.clone(),
                Job {
                    name: campaign.name,
                    tenant: tenant.to_string(),
                    priority,
                    cells_total: total,
                    cells_done: total,
                    status: status.clone(),
                    work: None,
                },
            );
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
            c.submitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Submission {
                digest,
                status,
                cached: true,
                coalesced: false,
            });
        }

        if state.ready_campaigns() >= self.inner.queue_cap {
            c.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Busy {
                queue_cap: self.inner.queue_cap,
            });
        }
        // Journal before releasing the lock: a worker must not be able to
        // write this digest's `started` record before its `submitted`
        // record exists.
        if let Some(journal) = &self.inner.journal {
            journal.record_submitted(&digest, &campaign, tenant, priority);
        }
        state.jobs.insert(
            digest.clone(),
            Job {
                name: campaign.name.clone(),
                tenant: tenant.to_string(),
                priority,
                cells_total: total,
                cells_done: 0,
                status: JobStatus::Queued,
                work: Some(Work {
                    plan: Arc::new(plan),
                    enqueued_at: std::time::Instant::now(),
                    slots: vec![None; total],
                    cursor: 0,
                    claimed: 0,
                    done: 0,
                    in_flight: 0,
                }),
            },
        );
        state.enqueue(tenant, digest.clone());
        c.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        // Many cells just became claimable: wake every worker.
        self.inner.work_ready.notify_all();
        Ok(Submission {
            digest,
            status: JobStatus::Queued,
            cached: false,
            coalesced: false,
        })
    }

    /// Attaches a submission to an already-known digest: a cache hit when
    /// the job is finished, a coalesce onto the in-flight job otherwise.
    fn attach(c: &Counters, state: &State, digest: &str) -> Option<Submission> {
        let job = state.jobs.get(digest)?;
        let (cached, coalesced) = match job.status {
            JobStatus::Done(_) | JobStatus::Failed(_) => (true, false),
            JobStatus::Queued | JobStatus::Running => (false, true),
        };
        if cached {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            c.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        c.submitted.fetch_add(1, Ordering::Relaxed);
        Some(Submission {
            digest: digest.to_string(),
            status: job.status.clone(),
            cached,
            coalesced,
        })
    }

    /// Current status of a digest, with its campaign name.
    pub fn status(&self, digest: &str) -> Option<(String, JobStatus)> {
        let state = self.inner.state.lock().expect("scheduler lock");
        state
            .jobs
            .get(digest)
            .map(|j| (j.name.clone(), j.status.clone()))
    }

    /// Cell progress of a digest: `(done, total)`.
    pub fn progress(&self, digest: &str) -> Option<(usize, usize)> {
        let state = self.inner.state.lock().expect("scheduler lock");
        state
            .jobs
            .get(digest)
            .map(|j| (j.cells_done, j.cells_total))
    }

    /// The result of a digest, if the job is done.
    pub fn result(&self, digest: &str) -> Option<Arc<SweepResult>> {
        match self.status(digest) {
            Some((_, JobStatus::Done(result))) => Some(result),
            _ => None,
        }
    }

    /// The merged-so-far snapshot of a digest: the final artifact for a
    /// done job, or the longest computable row prefix for a queued or
    /// running one (merged outside the scheduler lock). `None` for
    /// unknown digests and failed jobs.
    pub fn partial(&self, digest: &str) -> Option<Partial> {
        let (plan, slots, done, total) = {
            let state = self.inner.state.lock().expect("scheduler lock");
            let job = state.jobs.get(digest)?;
            match (&job.status, &job.work) {
                (JobStatus::Done(result), _) => {
                    return Some(Partial {
                        result: Arc::clone(result),
                        done: job.cells_done,
                        total: job.cells_total,
                        complete: true,
                    })
                }
                (JobStatus::Failed(_), _) | (_, None) => return None,
                (_, Some(work)) => (
                    Arc::clone(&work.plan),
                    work.slots.clone(),
                    work.done,
                    job.cells_total,
                ),
            }
        };
        let result = plan.merge_prefix(&slots).ok()?;
        Some(Partial {
            result: Arc::new(result),
            done,
            total,
            complete: false,
        })
    }

    /// Blocks until the job for `digest` leaves the queued/running states,
    /// or until `timeout` elapses. Returns the final status, or `None` on
    /// an unknown digest or timeout.
    pub fn wait(&self, digest: &str, timeout: std::time::Duration) -> Option<JobStatus> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("scheduler lock");
        loop {
            match state.jobs.get(digest) {
                None => return None,
                Some(job) => match &job.status {
                    JobStatus::Done(_) | JobStatus::Failed(_) => return Some(job.status.clone()),
                    JobStatus::Queued | JobStatus::Running => {}
                },
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) = self
                .inner
                .job_finished
                .wait_timeout(state, deadline - now)
                .expect("scheduler lock");
            state = s;
        }
    }

    /// The service counters.
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// Ready-queue occupancy and capacity (campaigns with unclaimed
    /// cells), for status output and backpressure.
    pub fn queue_depth(&self) -> (usize, usize) {
        let state = self.inner.state.lock().expect("scheduler lock");
        (state.ready_campaigns(), self.inner.queue_cap)
    }

    /// Cell-level queue state: `(unclaimed, in_flight)` summed over every
    /// unfinished job.
    pub fn cell_depth(&self) -> (usize, usize) {
        let state = self.inner.state.lock().expect("scheduler lock");
        let mut unclaimed = 0;
        let mut in_flight = 0;
        for job in state.jobs.values() {
            if let Some(work) = &job.work {
                unclaimed += work.slots.len() - work.claimed;
                in_flight += work.in_flight;
            }
        }
        (unclaimed, in_flight)
    }

    /// Per-tenant served-cell counters, in first-seen order.
    pub fn tenants(&self) -> Vec<(String, u64)> {
        let state = self.inner.state.lock().expect("scheduler lock");
        state
            .tenants
            .iter()
            .map(|t| (t.key.clone(), t.served_cells))
            .collect()
    }

    /// Worker occupancy: `(busy, total)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (
            self.inner.busy_workers.load(Ordering::Relaxed),
            self.inner.workers_total,
        )
    }

    /// Aggregate simulation telemetry since startup:
    /// `(instructions, wall_seconds)` summed over executed cells.
    pub fn sim_totals(&self) -> (u64, f64) {
        (
            self.inner.sim_instructions.load(Ordering::Relaxed),
            self.inner.sim_wall_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        )
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&ResultStore> {
        self.inner.store.as_ref()
    }

    /// The shared observability bundle (logger + metric registry).
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.inner.obs
    }

    /// Stops the workers after their current cell and joins them.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Re-inserts journaled jobs at startup: store hits become done jobs,
/// the rest requeue (in original submission order) with their journaled
/// cells pre-filled, and the journal is compacted down to the requeued
/// survivors. A job whose every cell was journaled is merged and marked
/// done without touching a worker.
fn replay_pending(inner: &Inner, pending: Vec<PendingJob>) {
    let mut survivors: Vec<PendingJob> = Vec::new();
    let mut state = inner.state.lock().expect("scheduler lock");
    for job in pending {
        if state.jobs.contains_key(&job.digest) {
            continue;
        }
        inner.counters.replayed.fetch_add(1, Ordering::Relaxed);
        let plan = match plan_campaign(&job.campaign.name, &job.campaign.panels) {
            Ok(plan) => plan,
            Err(e) => {
                // Validation passed when the job was first accepted, so
                // this is a code/journal version skew: drop, don't die.
                inner.obs.logger().warn(
                    "scheduler",
                    "dropping journaled job",
                    &[("digest", job.digest.clone()), ("error", e)],
                );
                continue;
            }
        };
        let total = plan.job_count();
        let tenant = if job.tenant.is_empty() {
            DEFAULT_TENANT.to_string()
        } else {
            job.tenant.clone()
        };
        let disk_hit = inner
            .store
            .as_ref()
            .and_then(|store| store.load(&job.digest).ok().flatten());
        if let Some(result) = disk_hit {
            // The previous process finished the simulation and persisted
            // the artifact but died before the `done` record landed.
            state.jobs.insert(
                job.digest,
                Job {
                    name: job.campaign.name,
                    tenant,
                    priority: job.priority.max(1),
                    cells_total: total,
                    cells_done: total,
                    status: JobStatus::Done(Arc::new(result)),
                    work: None,
                },
            );
            continue;
        }

        let mut slots: Vec<Option<SimReport>> = vec![None; total];
        let mut filled = 0usize;
        for (index, report) in &job.cells {
            // Out-of-range indices mean the plan shape changed across
            // versions; the stale cells are ignored and re-run.
            if *index < total && slots[*index].is_none() {
                slots[*index] = Some(report.clone());
                filled += 1;
            }
        }
        inner
            .counters
            .cells_replayed
            .fetch_add(filled as u64, Ordering::Relaxed);

        if filled == total {
            // Every cell was journaled — the process died between the
            // last cell record and the artifact/done record. Merge now.
            let reports: Vec<SimReport> =
                slots.into_iter().map(|s| s.expect("filled slot")).collect();
            let (status, name) = match plan.merge_cells(&reports) {
                Ok(result) => {
                    if let Some(store) = &inner.store {
                        if let Err(e) = store.store(&job.digest, &result) {
                            inner.obs.logger().error(
                                "scheduler",
                                "failed to persist result",
                                &[("digest", job.digest.clone()), ("error", e)],
                            );
                        }
                    }
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                    (JobStatus::Done(Arc::new(result)), job.campaign.name)
                }
                Err(e) => {
                    inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                    (JobStatus::Failed(e), job.campaign.name)
                }
            };
            state.jobs.insert(
                job.digest,
                Job {
                    name,
                    tenant,
                    priority: job.priority.max(1),
                    cells_total: total,
                    cells_done: total,
                    status,
                    work: None,
                },
            );
            continue;
        }

        state.jobs.insert(
            job.digest.clone(),
            Job {
                name: job.campaign.name.clone(),
                tenant: tenant.clone(),
                priority: job.priority.max(1),
                cells_total: total,
                cells_done: filled,
                status: JobStatus::Queued,
                work: Some(Work {
                    plan: Arc::new(plan),
                    enqueued_at: std::time::Instant::now(),
                    slots,
                    cursor: 0,
                    claimed: filled,
                    done: filled,
                    in_flight: 0,
                }),
            },
        );
        state.enqueue(&tenant, job.digest.clone());
        survivors.push(job);
    }
    drop(state);
    if let Some(journal) = &inner.journal {
        if let Err(e) = journal.compact(&survivors) {
            inner
                .obs
                .logger()
                .error("scheduler", "journal compaction failed", &[("error", e)]);
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let claim = {
            let mut state = inner.state.lock().expect("scheduler lock");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(claim) = claim_cell(&mut state) {
                    break claim;
                }
                state = inner.work_ready.wait(state).expect("scheduler lock");
            }
        };

        inner.busy_workers.fetch_add(1, Ordering::Relaxed);
        if claim.first {
            if let Some(journal) = &inner.journal {
                journal.record_started(&claim.digest);
            }
        }

        inner
            .obs
            .cell_queue_wait_us
            .record(claim.queue_wait.as_micros() as u64);
        let cell = &claim.plan.jobs()[claim.flat];
        let started = std::time::Instant::now();
        let report = cell.run();
        let wall = started.elapsed();
        inner.obs.cell_execution_us.record(wall.as_micros() as u64);
        inner.obs.logger().debug(
            "scheduler",
            "cell executed",
            &[
                ("digest", claim.digest.clone()),
                ("cell", claim.flat.to_string()),
                ("wall_us", wall.as_micros().to_string()),
            ],
        );
        inner
            .sim_instructions
            .fetch_add(cell.instructions, Ordering::Relaxed);
        inner
            .sim_wall_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        inner
            .counters
            .cells_executed
            .fetch_add(1, Ordering::Relaxed);
        // Journal the cell BEFORE the in-memory bookkeeping: a crash in
        // between re-executes this one cell, and the duplicate record is
        // deduplicated at replay (reports are bit-identical anyway).
        if let Some(journal) = &inner.journal {
            journal.record_cell(&claim.digest, claim.flat, &report);
        }

        let finished: Option<Work> = {
            let mut guard = inner.state.lock().expect("scheduler lock");
            let state = &mut *guard;
            let job = state
                .jobs
                .get_mut(&claim.digest)
                .expect("claimed job exists");
            let work = job.work.as_mut().expect("claimed job has work");
            work.slots[claim.flat] = Some(report);
            work.done += 1;
            work.in_flight -= 1;
            job.cells_done = work.done;
            if let Some(t) = state.tenants.iter_mut().find(|t| t.key == job.tenant) {
                t.served_cells += 1;
            }
            if work.done == work.slots.len() {
                // Last cell in: take the work out and merge off-lock.
                job.work.take()
            } else {
                None
            }
        };

        if let Some(work) = finished {
            let reports: Vec<SimReport> = work
                .slots
                .into_iter()
                .map(|s| s.expect("finished job has every report"))
                .collect();
            let outcome = work.plan.merge_cells(&reports);
            inner.counters.executed.fetch_add(1, Ordering::Relaxed);
            let (status, ok) = match outcome {
                Ok(result) => {
                    if let Some(store) = &inner.store {
                        if let Err(e) = store.store(&claim.digest, &result) {
                            inner.obs.logger().error(
                                "scheduler",
                                "failed to persist result",
                                &[("digest", claim.digest.clone()), ("error", e)],
                            );
                        }
                    }
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                    (JobStatus::Done(Arc::new(result)), true)
                }
                Err(e) => {
                    inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                    (JobStatus::Failed(e), false)
                }
            };
            let mut state = inner.state.lock().expect("scheduler lock");
            state
                .jobs
                .get_mut(&claim.digest)
                .expect("finished job exists")
                .status = status;
            drop(state);
            if let Some(journal) = &inner.journal {
                journal.record_done(&claim.digest, ok);
            }
            inner.obs.logger().info(
                "scheduler",
                "campaign finished",
                &[("digest", claim.digest.clone()), ("ok", ok.to_string())],
            );
            inner.job_finished.notify_all();
        }
        inner.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sweep::{engine, ConfigPoint, SweepSpec};
    use pythia_workloads::all_suites;
    use std::time::Duration;

    fn tiny_campaign(tag: &str, measure: u64) -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        Campaign::single(
            SweepSpec::new(tag)
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, measure)),
        )
    }

    /// A campaign with `seeds` replications — `2 * seeds` cells (baseline
    /// + measured per seed), for exercising cell-level interleaving.
    fn seeded_campaign(tag: &str, measure: u64, seeds: u64) -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        let seeds: Vec<u64> = (0..seeds).collect();
        Campaign::single(
            SweepSpec::new(tag)
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, measure))
                .with_seeds(&seeds),
        )
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pythia-sched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_run_and_memory_cache_hit() {
        let s = Scheduler::start(1, 8, None, None);
        let campaign = tiny_campaign("sched-basic", 4_000);
        let sub = s.submit(campaign.clone()).expect("accepted");
        assert!(!sub.cached);
        let done = s
            .wait(&sub.digest, Duration::from_secs(60))
            .expect("finishes");
        assert!(matches!(done, JobStatus::Done(_)));
        assert_eq!(s.progress(&sub.digest), Some((2, 2)), "baseline + cell");

        let again = s.submit(campaign).expect("accepted");
        assert!(again.cached, "second submission hits the done map");
        assert!(matches!(again.status, JobStatus::Done(_)));
        assert_eq!(s.counters().executed.load(Ordering::Relaxed), 1);
        assert_eq!(s.counters().cells_executed.load(Ordering::Relaxed), 2);
        assert_eq!(s.counters().cache_hits.load(Ordering::Relaxed), 1);
        let (instructions, wall) = s.sim_totals();
        assert!(instructions > 0, "per-cell telemetry captured");
        assert!(wall > 0.0);
        s.shutdown();
    }

    #[test]
    fn coalescing_shares_one_job() {
        // One worker pinned down by a blocker job makes coalescing
        // deterministic: the second identical submission arrives while the
        // target job is still queued.
        let s = Scheduler::start(1, 8, None, None);
        let blocker = s
            .submit(tiny_campaign("sched-blocker", 30_000))
            .expect("accepted");
        let target = tiny_campaign("sched-target", 4_000);
        let first = s.submit(target.clone()).expect("accepted");
        let second = s.submit(target).expect("accepted");
        assert!(second.coalesced, "identical in-flight submission coalesces");
        assert_eq!(first.digest, second.digest);

        assert!(s.wait(&blocker.digest, Duration::from_secs(60)).is_some());
        let done = s
            .wait(&first.digest, Duration::from_secs(60))
            .expect("finishes");
        assert!(matches!(done, JobStatus::Done(_)));
        assert_eq!(
            s.counters().executed.load(Ordering::Relaxed),
            2,
            "blocker + one shared target job"
        );
        assert_eq!(s.counters().coalesced.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // No workers: nothing ever drains, so occupancy is exact.
        let s = Scheduler::start(0, 2, None, None);
        s.submit(tiny_campaign("bp-1", 4_000)).expect("slot 1");
        s.submit(tiny_campaign("bp-2", 4_000)).expect("slot 2");
        let err = s.submit(tiny_campaign("bp-3", 4_000)).unwrap_err();
        assert!(matches!(err, SubmitError::Busy { queue_cap: 2 }));
        assert_eq!(s.counters().rejected.load(Ordering::Relaxed), 1);
        // A coalescing resubmission still works when the queue is full.
        let again = s.submit(tiny_campaign("bp-1", 4_000)).expect("coalesces");
        assert!(again.coalesced);
        // Cell-level gauges see the queued-but-unclaimed cells.
        let (unclaimed, in_flight) = s.cell_depth();
        assert_eq!(unclaimed, 4, "two campaigns x (baseline + cell)");
        assert_eq!(in_flight, 0);
        s.shutdown();
    }

    #[test]
    fn invalid_campaigns_are_rejected_up_front() {
        let s = Scheduler::start(0, 2, None, None);
        let invalid = Campaign::single(SweepSpec::new("empty"));
        match s.submit(invalid).unwrap_err() {
            SubmitError::Invalid(msg) => assert!(msg.contains("no work units"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert!(s.status("0123456789abcdef").is_none());
        s.shutdown();
    }

    #[test]
    fn weighted_round_robin_interleaves_tenants_cell_by_cell() {
        // No workers: claim synthetically and observe the schedule.
        let s = Scheduler::start(0, 8, None, None);
        let big = seeded_campaign("wrr-big", 4_000, 6); // 12 cells
        let small = seeded_campaign("wrr-small", 4_000, 2); // 4 cells
        let big_digest = big.digest();
        let small_digest = small.digest();
        s.submit_as(big, "alice", 1).expect("accepted");
        s.submit_as(small, "bob", 1).expect("accepted");

        let mut order = Vec::new();
        {
            let mut state = s.inner.state.lock().expect("lock");
            while let Some(claim) = claim_cell(&mut state) {
                order.push(claim.digest);
            }
        }
        assert_eq!(order.len(), 16, "every cell of both campaigns claimed");
        // Equal priorities alternate strictly until bob runs dry.
        let expected: Vec<&String> = [&big_digest, &small_digest]
            .into_iter()
            .cycle()
            .take(8)
            .collect();
        assert_eq!(order[..8].iter().collect::<Vec<_>>(), expected);
        assert!(order[8..].iter().all(|d| d == &big_digest));
        s.shutdown();
    }

    #[test]
    fn priority_weights_the_quantum() {
        let s = Scheduler::start(0, 8, None, None);
        let heavy = seeded_campaign("prio-heavy", 4_000, 6); // 12 cells
        let light = seeded_campaign("prio-light", 4_000, 6);
        let heavy_digest = heavy.digest();
        s.submit_as(heavy, "alice", 3).expect("accepted");
        s.submit_as(light, "bob", 1).expect("accepted");

        let mut order = Vec::new();
        {
            let mut state = s.inner.state.lock().expect("lock");
            for _ in 0..8 {
                order.push(claim_cell(&mut state).expect("cells left").digest);
            }
        }
        // Priority 3 vs 1: alice gets 3 cells per visit, bob 1.
        let alice_share = order.iter().filter(|d| **d == heavy_digest).count();
        assert_eq!(alice_share, 6, "3:1 quantum over 8 claims");
        s.shutdown();
    }

    #[test]
    fn mid_campaign_kill_and_replay_resumes_only_unfinished_cells() {
        let dir = tmp_dir("cell-replay");
        let journal_path = dir.join("journal.jsonl");
        let store_dir = dir.join("cache");
        // Cells must be slow enough that the 5 ms progress polls below
        // observe the campaign mid-flight — too-small cells all finish
        // between two polls and the "killed mid-campaign" setup fails.
        let campaign = seeded_campaign("cell-replay", 100_000, 4); // 8 cells
        let digest = campaign.digest();
        let direct = engine::run_all(&campaign.name, &campaign.panels, 1)
            .expect("direct run")
            .stripped();

        // Phase 1: run with one worker and stop mid-campaign ("kill"):
        // shutdown() lets the in-flight cell finish, then the process is
        // gone — no `done` record, some `cell` records.
        let phase1_cells = {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(1, 8, Some(store), Some(journal));
            s.submit(campaign.clone()).expect("accepted");
            // Wait until at least two cells completed, then pull the plug.
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            loop {
                let (done, _) = s.progress(&digest).expect("known digest");
                if done >= 2 {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "no progress");
                std::thread::sleep(Duration::from_millis(5));
            }
            // Keep the counters alive past shutdown(), which consumes `s`.
            let inner = Arc::clone(&s.inner);
            s.shutdown();
            inner.counters.cells_executed.load(Ordering::Relaxed)
        };
        assert!(phase1_cells >= 2, "phase 1 made progress");
        assert!(phase1_cells < 8, "phase 1 was killed mid-campaign");

        // Phase 2: restart on the same dirs. Only the remaining cells
        // may execute; the final artifact is byte-identical to a direct
        // monolithic run.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(1, 8, Some(store), Some(journal));
            assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 1);
            assert_eq!(
                s.counters().cells_replayed.load(Ordering::Relaxed),
                phase1_cells,
                "every journaled cell restored, none lost"
            );
            let done = s
                .wait(&digest, Duration::from_secs(120))
                .expect("resumed job finishes");
            assert!(matches!(done, JobStatus::Done(_)));
            assert_eq!(
                s.counters().cells_executed.load(Ordering::Relaxed),
                8 - phase1_cells,
                "only the unfinished cells re-executed"
            );
            let resumed = s.result(&digest).expect("result");
            assert_eq!(
                resumed.to_json().render_pretty(),
                direct.to_json().render_pretty(),
                "resumed result matches a direct run byte-for-byte"
            );
            s.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_replay_resumes_queued_jobs_byte_identically() {
        let dir = tmp_dir("journal-replay");
        let journal_path = dir.join("journal.jsonl");
        let store_dir = dir.join("cache");
        let (a, b) = (
            tiny_campaign("replay-a", 4_000),
            tiny_campaign("replay-b", 5_000),
        );

        // Phase 1: a zero-worker scheduler accepts two jobs and is dropped
        // with the queue full — the moral equivalent of kill -9.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(0, 8, Some(store), Some(journal));
            s.submit(a.clone()).expect("accepted");
            s.submit(b.clone()).expect("accepted");
            s.shutdown();
        }
        // Simulate job A having been picked up before the crash.
        {
            let journal = Journal::open(&journal_path).expect("journal");
            journal.record_started(&a.digest());
        }

        // Phase 2: a fresh scheduler on the same dirs replays and runs both.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(1, 8, Some(store), Some(journal));
            assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 2);
            for c in [&a, &b] {
                let done = s
                    .wait(&c.digest(), Duration::from_secs(60))
                    .expect("replayed job finishes");
                assert!(matches!(done, JobStatus::Done(_)));
            }
            // Byte-identical to a direct run of the same campaign.
            let direct = engine::run_all(&a.name, &a.panels, 1)
                .expect("direct run")
                .stripped();
            let replayed = s.result(&a.digest()).expect("result");
            assert_eq!(
                replayed.to_json().render_pretty(),
                direct.to_json().render_pretty(),
                "replayed result matches a direct run byte-for-byte"
            );
            s.shutdown();
        }

        // Phase 3: everything completed, so a third startup replays nothing
        // and serves both digests straight from the disk store.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(1, 8, Some(store), Some(journal));
            assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 0);
            let sub = s.submit(a.clone()).expect("accepted");
            assert!(sub.cached, "resubmission hits the disk store");
            assert_eq!(s.counters().executed.load(Ordering::Relaxed), 0);
            s.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_replay_skips_digests_already_in_store() {
        let dir = tmp_dir("journal-store-hit");
        let journal_path = dir.join("journal.jsonl");
        let store_dir = dir.join("cache");
        let a = tiny_campaign("storehit-a", 4_000);

        // Run the campaign directly into the store, then journal it as
        // submitted-but-unfinished (artifact landed, `done` record lost).
        let store = ResultStore::open(&store_dir).expect("store");
        let result = engine::run_all(&a.name, &a.panels, 1)
            .expect("run")
            .stripped();
        store.store(&a.digest(), &result).expect("persist");
        {
            let journal = Journal::open(&journal_path).expect("journal");
            journal.record_submitted(&a.digest(), &a, DEFAULT_TENANT, 1);
        }

        let journal = Journal::open(&journal_path).expect("journal");
        let s = Scheduler::start(0, 8, Some(store), Some(journal));
        assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 1);
        // Resolved from the store without a worker (there are none).
        assert!(s.result(&a.digest()).is_some());
        let (depth, _) = s.queue_depth();
        assert_eq!(depth, 0, "nothing requeued");
        // The journal compacted down to nothing.
        let text = std::fs::read_to_string(&journal_path).expect("read journal");
        assert!(text.is_empty(), "compacted journal is empty: {text:?}");
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_merges_are_monotonic_prefixes_of_the_final_result() {
        // No workers: fill cells via synthetic claims so every partial
        // state is deterministic.
        let s = Scheduler::start(0, 8, None, None);
        let campaign = seeded_campaign("partial", 4_000, 3); // 6 cells
        let digest = campaign.digest();
        s.submit(campaign.clone()).expect("accepted");

        let direct = engine::run_all(&campaign.name, &campaign.panels, 1)
            .expect("direct")
            .stripped();

        let empty = s.partial(&digest).expect("known digest");
        assert_eq!((empty.done, empty.total), (0, 6));
        assert!(!empty.complete);
        assert!(empty.result.baselines.is_empty() && empty.result.cells.is_empty());

        // Complete cells one at a time (in plan order) and check each
        // partial is a prefix of the final rows with monotonic progress.
        let mut last_rows = 0usize;
        for step in 0..6usize {
            let (flat, plan) = {
                let mut state = s.inner.state.lock().expect("lock");
                let claim = claim_cell(&mut state).expect("cells left");
                (claim.flat, claim.plan)
            };
            let report = plan.jobs()[flat].run();
            {
                let mut guard = s.inner.state.lock().expect("lock");
                let state = &mut *guard;
                let job = state.jobs.get_mut(&digest).expect("job");
                let work = job.work.as_mut().expect("work");
                work.slots[flat] = Some(report);
                work.done += 1;
                work.in_flight -= 1;
                job.cells_done = work.done;
            }
            let partial = s.partial(&digest).expect("known digest");
            assert_eq!(partial.done, step + 1, "progress is monotonic");
            let rows = partial.result.baselines.len() + partial.result.cells.len();
            assert!(rows >= last_rows, "rows never regress");
            last_rows = rows;
            assert_eq!(
                partial.result.baselines[..],
                direct.baselines[..partial.result.baselines.len()],
                "baselines are a prefix of the final artifact"
            );
            assert_eq!(
                partial.result.cells[..],
                direct.cells[..partial.result.cells.len()],
                "cells are a prefix of the final artifact"
            );
        }
        let full = s.partial(&digest).expect("known digest");
        assert_eq!(full.done, 6);
        assert_eq!(*full.result, direct, "full prefix equals the direct run");
        s.shutdown();
    }
}
