//! Job scheduling: a bounded queue, a worker-thread pool, in-flight
//! dedup, a content-addressed cache, and a crash-safe journal in front of
//! the simulations.
//!
//! Every submission is keyed by its campaign digest
//! ([`Campaign::digest`]). The scheduler guarantees that a digest costs at
//! most one simulation per process lifetime:
//!
//! * a digest already **done** in memory is served instantly,
//! * a digest present in the on-disk [`ResultStore`] is loaded, not run,
//! * a digest currently **queued/running** is *coalesced* — the new
//!   submission attaches to the in-flight job instead of enqueuing a copy,
//! * only a never-seen digest occupies a queue slot, and a full queue
//!   rejects the submission ([`SubmitError::Busy`] → HTTP 429).
//!
//! When a [`Journal`] is attached, every fresh enqueue is recorded before
//! the submission returns, and on startup unfinished journal entries are
//! replayed: digests whose artifact already landed in the store are
//! marked done, everything else is requeued, and the journal is compacted
//! down to the survivors.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pythia_stats::json::Json;
use pythia_sweep::codec::Campaign;
use pythia_sweep::{engine, ResultStore, SweepResult};

use crate::journal::Journal;

/// Lifecycle of one campaign job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the stripped result is held in memory (and on disk when a
    /// cache directory is configured).
    Done(Arc<SweepResult>),
    /// Validation passed but execution failed (should not happen for
    /// validated specs; kept for fail-soft behaviour).
    Failed(String),
}

impl JobStatus {
    /// The wire label (`"queued"`, `"running"`, `"done"`, `"failed"`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// What a submission observed.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The campaign digest (the job id).
    pub digest: String,
    /// Status right after this submission.
    pub status: JobStatus,
    /// Whether the result came from cache (memory or disk) rather than a
    /// fresh simulation scheduled by *some* submission of this digest.
    pub cached: bool,
    /// Whether this submission coalesced onto an in-flight job.
    pub coalesced: bool,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job queue is full — retry later (HTTP 429).
    Busy {
        /// Configured queue capacity at rejection time.
        queue_cap: usize,
    },
    /// The campaign failed validation (HTTP 400).
    Invalid(String),
}

/// Monotonic service counters, readable without any lock.
#[derive(Debug, Default)]
pub struct Counters {
    /// Campaigns accepted (every non-error submission).
    pub submitted: AtomicU64,
    /// Campaigns actually simulated by a worker.
    pub executed: AtomicU64,
    /// Submissions served from the in-memory done map or the disk store.
    pub cache_hits: AtomicU64,
    /// Submissions coalesced onto a queued/running job.
    pub coalesced: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs that failed during execution.
    pub failed: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected: AtomicU64,
    /// Jobs recovered from the journal at startup (requeued or resolved
    /// from the disk store).
    pub replayed: AtomicU64,
}

impl Counters {
    /// Snapshot as a JSON object (the `counters` key of status responses).
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Json::obj()
            .set("submitted", get(&self.submitted))
            .set("executed", get(&self.executed))
            .set("cache_hits", get(&self.cache_hits))
            .set("coalesced", get(&self.coalesced))
            .set("completed", get(&self.completed))
            .set("failed", get(&self.failed))
            .set("rejected", get(&self.rejected))
            .set("replayed", get(&self.replayed))
    }
}

struct Job {
    /// Campaign name, kept for status responses after completion.
    name: String,
    /// The expanded campaign, taken by the worker that runs it (and absent
    /// for disk-cache hits) so finished jobs don't pin whole grids in
    /// memory.
    campaign: Option<Campaign>,
    status: JobStatus,
}

#[derive(Default)]
struct State {
    queue: VecDeque<String>,
    jobs: HashMap<String, Job>,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    job_finished: Condvar,
    queue_cap: usize,
    sim_threads: usize,
    store: Option<ResultStore>,
    journal: Option<Journal>,
    counters: Counters,
    workers_total: usize,
    busy_workers: AtomicUsize,
    /// Total instructions simulated by this process (for Minst/s).
    sim_instructions: AtomicU64,
    /// Total simulation wall time in nanoseconds.
    sim_wall_nanos: AtomicU64,
    shutdown: AtomicBool,
}

/// The campaign scheduler: owns the queue, the status map, and the worker
/// pool. Cloneable handle semantics come from wrapping it in an `Arc` at
/// the server layer.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts a scheduler with `workers` worker threads, a queue bounded at
    /// `queue_cap`, `sim_threads` simulation threads per job, an optional
    /// on-disk result store, and an optional crash-safe journal.
    ///
    /// Unfinished journal entries are replayed before the workers start:
    /// digests already resolvable from `store` are inserted as done,
    /// everything else is requeued (ignoring `queue_cap` — journaled work
    /// was already accepted once), and the journal is compacted.
    ///
    /// `workers == 0` is permitted (jobs queue but never run) — useful for
    /// deterministic backpressure tests; the CLI clamps to ≥ 1.
    pub fn start(
        workers: usize,
        queue_cap: usize,
        sim_threads: usize,
        store: Option<ResultStore>,
        mut journal: Option<Journal>,
    ) -> Self {
        let pending = journal
            .as_mut()
            .map(Journal::take_pending)
            .unwrap_or_default();
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            job_finished: Condvar::new(),
            queue_cap: queue_cap.max(1),
            sim_threads: sim_threads.max(1),
            store,
            journal,
            counters: Counters::default(),
            workers_total: workers,
            busy_workers: AtomicUsize::new(0),
            sim_instructions: AtomicU64::new(0),
            sim_wall_nanos: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });

        if !pending.is_empty() {
            replay_pending(&inner, pending);
        }

        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Submits a campaign.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on validation failure, [`SubmitError::Busy`]
    /// when the queue is full.
    pub fn submit(&self, campaign: Campaign) -> Result<Submission, SubmitError> {
        campaign.validate().map_err(SubmitError::Invalid)?;
        let digest = campaign.digest();
        let c = &self.inner.counters;

        // Fast path: the digest is already known in this process.
        {
            let state = self.inner.state.lock().expect("scheduler lock");
            if let Some(hit) = Self::attach(c, &state, &digest) {
                return Ok(hit);
            }
        }

        // First sighting — probe the disk store WITHOUT holding the lock
        // (the load reads and decodes a potentially large artifact; status
        // polls and other submissions must not stall behind it).
        let disk_hit = match &self.inner.store {
            None => None,
            Some(store) => match store.load(&digest) {
                Ok(hit) => hit,
                Err(e) => {
                    // A corrupt artifact must not take the digest down
                    // permanently: fall through and re-simulate.
                    eprintln!("serve: ignoring corrupt cache artifact for {digest}: {e}");
                    None
                }
            },
        };

        let mut state = self.inner.state.lock().expect("scheduler lock");
        // Re-check: a racing submission may have inserted meanwhile.
        if let Some(hit) = Self::attach(c, &state, &digest) {
            return Ok(hit);
        }

        if let Some(result) = disk_hit {
            let status = JobStatus::Done(Arc::new(result));
            state.jobs.insert(
                digest.clone(),
                Job {
                    name: campaign.name,
                    campaign: None,
                    status: status.clone(),
                },
            );
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
            c.submitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Submission {
                digest,
                status,
                cached: true,
                coalesced: false,
            });
        }

        if state.queue.len() >= self.inner.queue_cap {
            c.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Busy {
                queue_cap: self.inner.queue_cap,
            });
        }
        // Journal before releasing the lock: a worker must not be able to
        // write this digest's `started` record before its `submitted`
        // record exists.
        if let Some(journal) = &self.inner.journal {
            journal.record_submitted(&digest, &campaign);
        }
        state.jobs.insert(
            digest.clone(),
            Job {
                name: campaign.name.clone(),
                campaign: Some(campaign),
                status: JobStatus::Queued,
            },
        );
        state.queue.push_back(digest.clone());
        c.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(Submission {
            digest,
            status: JobStatus::Queued,
            cached: false,
            coalesced: false,
        })
    }

    /// Attaches a submission to an already-known digest: a cache hit when
    /// the job is finished, a coalesce onto the in-flight job otherwise.
    fn attach(c: &Counters, state: &State, digest: &str) -> Option<Submission> {
        let job = state.jobs.get(digest)?;
        let (cached, coalesced) = match job.status {
            JobStatus::Done(_) | JobStatus::Failed(_) => (true, false),
            JobStatus::Queued | JobStatus::Running => (false, true),
        };
        if cached {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            c.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        c.submitted.fetch_add(1, Ordering::Relaxed);
        Some(Submission {
            digest: digest.to_string(),
            status: job.status.clone(),
            cached,
            coalesced,
        })
    }

    /// Current status of a digest, with its campaign name.
    pub fn status(&self, digest: &str) -> Option<(String, JobStatus)> {
        let state = self.inner.state.lock().expect("scheduler lock");
        state
            .jobs
            .get(digest)
            .map(|j| (j.name.clone(), j.status.clone()))
    }

    /// The result of a digest, if the job is done.
    pub fn result(&self, digest: &str) -> Option<Arc<SweepResult>> {
        match self.status(digest) {
            Some((_, JobStatus::Done(result))) => Some(result),
            _ => None,
        }
    }

    /// Blocks until the job for `digest` leaves the queued/running states,
    /// or until `timeout` elapses. Returns the final status, or `None` on
    /// an unknown digest or timeout.
    pub fn wait(&self, digest: &str, timeout: std::time::Duration) -> Option<JobStatus> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("scheduler lock");
        loop {
            match state.jobs.get(digest) {
                None => return None,
                Some(job) => match &job.status {
                    JobStatus::Done(_) | JobStatus::Failed(_) => return Some(job.status.clone()),
                    JobStatus::Queued | JobStatus::Running => {}
                },
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) = self
                .inner
                .job_finished
                .wait_timeout(state, deadline - now)
                .expect("scheduler lock");
            state = s;
        }
    }

    /// The service counters.
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// Queue occupancy and capacity, for status output.
    pub fn queue_depth(&self) -> (usize, usize) {
        let state = self.inner.state.lock().expect("scheduler lock");
        (state.queue.len(), self.inner.queue_cap)
    }

    /// Worker occupancy: `(busy, total)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (
            self.inner.busy_workers.load(Ordering::Relaxed),
            self.inner.workers_total,
        )
    }

    /// Aggregate simulation telemetry since startup:
    /// `(instructions, wall_seconds)` summed over executed jobs.
    pub fn sim_totals(&self) -> (u64, f64) {
        (
            self.inner.sim_instructions.load(Ordering::Relaxed),
            self.inner.sim_wall_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        )
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&ResultStore> {
        self.inner.store.as_ref()
    }

    /// Stops the workers after their current job and joins them.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Re-inserts journaled jobs at startup: store hits become done jobs,
/// the rest requeue (in original submission order), and the journal is
/// compacted down to the requeued survivors.
fn replay_pending(inner: &Inner, pending: Vec<crate::journal::PendingJob>) {
    let mut survivors: Vec<(String, Campaign)> = Vec::new();
    let mut state = inner.state.lock().expect("scheduler lock");
    for job in pending {
        if state.jobs.contains_key(&job.digest) {
            continue;
        }
        inner.counters.replayed.fetch_add(1, Ordering::Relaxed);
        let disk_hit = inner
            .store
            .as_ref()
            .and_then(|store| store.load(&job.digest).ok().flatten());
        if let Some(result) = disk_hit {
            // The previous process finished the simulation and persisted
            // the artifact but died before the `done` record landed.
            state.jobs.insert(
                job.digest,
                Job {
                    name: job.campaign.name,
                    campaign: None,
                    status: JobStatus::Done(Arc::new(result)),
                },
            );
            continue;
        }
        state.jobs.insert(
            job.digest.clone(),
            Job {
                name: job.campaign.name.clone(),
                campaign: Some(job.campaign.clone()),
                status: JobStatus::Queued,
            },
        );
        state.queue.push_back(job.digest.clone());
        survivors.push((job.digest, job.campaign));
    }
    drop(state);
    if let Some(journal) = &inner.journal {
        if let Err(e) = journal.compact(&survivors) {
            eprintln!("serve: journal compaction failed: {e}");
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (digest, campaign) = {
            let mut state = inner.state.lock().expect("scheduler lock");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(digest) = state.queue.pop_front() {
                    let job = state.jobs.get_mut(&digest).expect("queued job exists");
                    job.status = JobStatus::Running;
                    // Take (not clone) the campaign: once the job finishes,
                    // only its name and result stay resident.
                    let campaign = job.campaign.take().expect("queued job has its campaign");
                    break (digest, campaign);
                }
                state = inner.work_ready.wait(state).expect("scheduler lock");
            }
        };

        inner.busy_workers.fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &inner.journal {
            journal.record_started(&digest);
        }
        // Capture the throughput telemetry before stripping it: the stored
        // artifact stays deterministic, but the aggregate Minst/s survives
        // in the metrics counters.
        let outcome =
            engine::run_all(&campaign.name, &campaign.panels, inner.sim_threads).map(|result| {
                if let Some(t) = &result.throughput {
                    inner
                        .sim_instructions
                        .fetch_add(t.instructions, Ordering::Relaxed);
                    inner
                        .sim_wall_nanos
                        .fetch_add((t.wall_seconds * 1e9) as u64, Ordering::Relaxed);
                }
                result.stripped()
            });
        inner.counters.executed.fetch_add(1, Ordering::Relaxed);

        let (status, ok) = match outcome {
            Ok(result) => {
                if let Some(store) = &inner.store {
                    if let Err(e) = store.store(&digest, &result) {
                        eprintln!("serve: failed to persist {digest}: {e}");
                    }
                }
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                (JobStatus::Done(Arc::new(result)), true)
            }
            Err(e) => {
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                (JobStatus::Failed(e), false)
            }
        };

        let mut state = inner.state.lock().expect("scheduler lock");
        state
            .jobs
            .get_mut(&digest)
            .expect("running job exists")
            .status = status;
        drop(state);
        if let Some(journal) = &inner.journal {
            journal.record_done(&digest, ok);
        }
        inner.busy_workers.fetch_sub(1, Ordering::Relaxed);
        inner.job_finished.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sweep::{ConfigPoint, SweepSpec};
    use pythia_workloads::all_suites;
    use std::time::Duration;

    fn tiny_campaign(tag: &str, measure: u64) -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        Campaign::single(
            SweepSpec::new(tag)
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, measure)),
        )
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pythia-sched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_run_and_memory_cache_hit() {
        let s = Scheduler::start(1, 8, 1, None, None);
        let campaign = tiny_campaign("sched-basic", 4_000);
        let sub = s.submit(campaign.clone()).expect("accepted");
        assert!(!sub.cached);
        let done = s
            .wait(&sub.digest, Duration::from_secs(60))
            .expect("finishes");
        assert!(matches!(done, JobStatus::Done(_)));

        let again = s.submit(campaign).expect("accepted");
        assert!(again.cached, "second submission hits the done map");
        assert!(matches!(again.status, JobStatus::Done(_)));
        assert_eq!(s.counters().executed.load(Ordering::Relaxed), 1);
        assert_eq!(s.counters().cache_hits.load(Ordering::Relaxed), 1);
        let (instructions, wall) = s.sim_totals();
        assert!(instructions > 0, "telemetry captured before stripping");
        assert!(wall > 0.0);
        s.shutdown();
    }

    #[test]
    fn coalescing_shares_one_job() {
        // One worker pinned down by a blocker job makes coalescing
        // deterministic: the second identical submission arrives while the
        // target job is still queued.
        let s = Scheduler::start(1, 8, 1, None, None);
        let blocker = s
            .submit(tiny_campaign("sched-blocker", 30_000))
            .expect("accepted");
        let target = tiny_campaign("sched-target", 4_000);
        let first = s.submit(target.clone()).expect("accepted");
        let second = s.submit(target).expect("accepted");
        assert!(second.coalesced, "identical in-flight submission coalesces");
        assert_eq!(first.digest, second.digest);

        assert!(s.wait(&blocker.digest, Duration::from_secs(60)).is_some());
        let done = s
            .wait(&first.digest, Duration::from_secs(60))
            .expect("finishes");
        assert!(matches!(done, JobStatus::Done(_)));
        assert_eq!(
            s.counters().executed.load(Ordering::Relaxed),
            2,
            "blocker + one shared target job"
        );
        assert_eq!(s.counters().coalesced.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // No workers: nothing ever drains, so occupancy is exact.
        let s = Scheduler::start(0, 2, 1, None, None);
        s.submit(tiny_campaign("bp-1", 4_000)).expect("slot 1");
        s.submit(tiny_campaign("bp-2", 4_000)).expect("slot 2");
        let err = s.submit(tiny_campaign("bp-3", 4_000)).unwrap_err();
        assert!(matches!(err, SubmitError::Busy { queue_cap: 2 }));
        assert_eq!(s.counters().rejected.load(Ordering::Relaxed), 1);
        // A coalescing resubmission still works when the queue is full.
        let again = s.submit(tiny_campaign("bp-1", 4_000)).expect("coalesces");
        assert!(again.coalesced);
        s.shutdown();
    }

    #[test]
    fn invalid_campaigns_are_rejected_up_front() {
        let s = Scheduler::start(0, 2, 1, None, None);
        let invalid = Campaign::single(SweepSpec::new("empty"));
        match s.submit(invalid).unwrap_err() {
            SubmitError::Invalid(msg) => assert!(msg.contains("no work units"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert!(s.status("0123456789abcdef").is_none());
        s.shutdown();
    }

    #[test]
    fn journal_replay_resumes_queued_jobs_byte_identically() {
        let dir = tmp_dir("journal-replay");
        let journal_path = dir.join("journal.jsonl");
        let store_dir = dir.join("cache");
        let (a, b) = (
            tiny_campaign("replay-a", 4_000),
            tiny_campaign("replay-b", 5_000),
        );

        // Phase 1: a zero-worker scheduler accepts two jobs and is dropped
        // with the queue full — the moral equivalent of kill -9.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(0, 8, 1, Some(store), Some(journal));
            s.submit(a.clone()).expect("accepted");
            s.submit(b.clone()).expect("accepted");
            s.shutdown();
        }
        // Simulate job A having been picked up before the crash.
        {
            let journal = Journal::open(&journal_path).expect("journal");
            journal.record_started(&a.digest());
        }

        // Phase 2: a fresh scheduler on the same dirs replays and runs both.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(1, 8, 1, Some(store), Some(journal));
            assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 2);
            for c in [&a, &b] {
                let done = s
                    .wait(&c.digest(), Duration::from_secs(60))
                    .expect("replayed job finishes");
                assert!(matches!(done, JobStatus::Done(_)));
            }
            // Byte-identical to a direct run of the same campaign.
            let direct = engine::run_all(&a.name, &a.panels, 1)
                .expect("direct run")
                .stripped();
            let replayed = s.result(&a.digest()).expect("result");
            assert_eq!(
                replayed.to_json().render_pretty(),
                direct.to_json().render_pretty(),
                "replayed result matches a direct run byte-for-byte"
            );
            s.shutdown();
        }

        // Phase 3: everything completed, so a third startup replays nothing
        // and serves both digests straight from the disk store.
        {
            let store = ResultStore::open(&store_dir).expect("store");
            let journal = Journal::open(&journal_path).expect("journal");
            let s = Scheduler::start(1, 8, 1, Some(store), Some(journal));
            assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 0);
            let sub = s.submit(a.clone()).expect("accepted");
            assert!(sub.cached, "resubmission hits the disk store");
            assert_eq!(s.counters().executed.load(Ordering::Relaxed), 0);
            s.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_replay_skips_digests_already_in_store() {
        let dir = tmp_dir("journal-store-hit");
        let journal_path = dir.join("journal.jsonl");
        let store_dir = dir.join("cache");
        let a = tiny_campaign("storehit-a", 4_000);

        // Run the campaign directly into the store, then journal it as
        // submitted-but-unfinished (artifact landed, `done` record lost).
        let store = ResultStore::open(&store_dir).expect("store");
        let result = engine::run_all(&a.name, &a.panels, 1)
            .expect("run")
            .stripped();
        store.store(&a.digest(), &result).expect("persist");
        {
            let journal = Journal::open(&journal_path).expect("journal");
            journal.record_submitted(&a.digest(), &a);
        }

        let journal = Journal::open(&journal_path).expect("journal");
        let s = Scheduler::start(0, 8, 1, Some(store), Some(journal));
        assert_eq!(s.counters().replayed.load(Ordering::Relaxed), 1);
        // Resolved from the store without a worker (there are none).
        assert!(s.result(&a.digest()).is_some());
        let (depth, _) = s.queue_depth();
        assert_eq!(depth, 0, "nothing requeued");
        // The journal compacted down to nothing.
        let text = std::fs::read_to_string(&journal_path).expect("read journal");
        assert!(text.is_empty(), "compacted journal is empty: {text:?}");
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
