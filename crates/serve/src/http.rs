//! A hand-rolled HTTP/1.1 subset over `std::net`.
//!
//! The build environment has no network crates, so `pythia-serve` speaks
//! just enough HTTP/1.1 itself: one request per connection
//! (`Connection: close` semantics), `Content-Length` bodies only (no
//! chunked encoding), and a small, strict parser with hard size limits.
//! Both the server and the [`crate::client`] helpers are built on this
//! module, so the two ends agree by construction.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted body bytes (canonical specs for the largest registry
/// campaigns are well under 2 MiB; 16 MiB leaves headroom).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Socket read/write timeout: a stalled peer cannot wedge a handler.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request: method, split target, and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-cased as received.
    pub method: String,
    /// Path portion of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A response about to be written: status code plus JSON or text payload.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }
}

/// Reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// Returns a message on malformed requests, oversized heads/bodies, io
/// errors, or timeouts.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_read_timeout: {e}"))?;

    // Read until the end-of-head marker, keeping any body bytes that came
    // along in the same segments.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "head is not utf-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_uppercase();
    let target = parts.next().ok_or("missing target")?;
    let version = parts.next().ok_or("missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version:?}"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = split_target(target);
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a response and flushes the stream.
///
/// # Errors
///
/// Returns a message on io errors.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> Result<(), String> {
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))
}

/// Client side: sends one request to `addr` and returns
/// `(status, body)`. Opens a fresh connection per call (the server closes
/// after each response anyway).
///
/// # Errors
///
/// Returns a message on connection, io, or protocol errors.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| format!("timeouts: {e}"))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write {addr}: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    let head_end = find_head_end(&raw).ok_or("response missing head terminator")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head not utf-8")?;
    let status_line = head.split("\r\n").next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splitting_and_decoding() {
        let (path, query) = split_target("/campaigns/abc/result?format=md&x=a%20b");
        assert_eq!(path, "/campaigns/abc/result");
        assert_eq!(query[0], ("format".into(), "md".into()));
        assert_eq!(query[1], ("x".into(), "a b".into()));
        let (path, query) = split_target("/figures");
        assert_eq!(path, "/figures");
        assert!(query.is_empty());
    }

    #[test]
    fn roundtrip_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let req = read_request(&mut stream).expect("parse request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            assert_eq!(req.query("tag"), Some("t1"));
            let resp = Response::json(200, req.body.clone());
            write_response(&mut stream, &resp).expect("write response");
        });
        let (status, body) = request(&addr, "POST", "/echo?tag=t1", b"{\"k\":1}").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"k\":1}");
        server.join().expect("server thread");
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            read_request(&mut stream)
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .expect("write");
        let err = server.join().expect("join").unwrap_err();
        assert!(err.contains("too large"), "{err}");
    }
}
