//! A hand-rolled HTTP/1.1 subset over `std::net`.
//!
//! The build environment has no network crates, so `pythia-serve` speaks
//! just enough HTTP/1.1 itself: persistent connections with
//! `Connection: keep-alive`/`close` semantics, `Content-Length` bodies
//! only (no chunked encoding), and a small, strict parser with hard size
//! limits. A [`RequestReader`] carries bytes read past one request's body
//! into the next request's parse, so pipelined requests on one connection
//! are delivered byte-exactly. Both the server and the [`crate::client`]
//! helpers are built on this module, so the two ends agree by
//! construction.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted body bytes (canonical specs for the largest registry
/// campaigns are well under 2 MiB; 16 MiB leaves headroom).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Socket read/write timeout: a stalled peer cannot wedge a handler.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request: method, split target, headers, and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-cased as received.
    pub method: String,
    /// Path portion of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the peer asked to close the connection after this request
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A response about to be written: status code, payload, and any extra
/// headers (`etag`, ...).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra `(name, value)` headers emitted verbatim after the standard
    /// ones. Names should be lower-case; values must not contain CR/LF.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// Returns the response with an extra header appended.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Why reading a request failed, so the caller can pick the right close
/// behavior: a clean 408 on timeout, a 400 on malformed bytes, a 413 on
/// oversized heads/bodies, or a silent drop when the peer simply left.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out waiting for (more of) a request.
    Timeout,
    /// The bytes received do not form a valid request.
    Malformed(String),
    /// The head or declared body exceeds the configured limits.
    TooLarge(String),
    /// Any other io failure (peer vanished mid-request, reset, ...).
    Io(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Timeout => write!(f, "read timed out"),
            Self::Malformed(m) => write!(f, "malformed request: {m}"),
            Self::TooLarge(m) => write!(f, "request too large: {m}"),
            Self::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

/// Reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        206 => "Partial Content",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// Reads from `stream`, retrying `Interrupted` and mapping timeout kinds
/// to [`RequestError::Timeout`]. `Ok(0)` is end-of-stream.
fn read_some(stream: &mut TcpStream, chunk: &mut [u8]) -> Result<usize, RequestError> {
    loop {
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(RequestError::Timeout)
            }
            Err(e) => return Err(RequestError::Io(format!("read: {e}"))),
        }
    }
}

/// Finds the `\r\n\r\n` end-of-head marker, scanning each byte once.
///
/// `scanned` is the resume offset: bytes before it were already checked
/// on a previous call, so the scan restarts at most 3 bytes back (the
/// marker may straddle a chunk boundary). On a miss, `scanned` advances
/// to the buffer length.
fn find_head_end(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    let start = scanned.saturating_sub(3);
    if let Some(pos) = buf[start..].windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(start + pos);
    }
    *scanned = buf.len();
    None
}

/// Reads successive requests off one connection, carrying bytes that
/// arrive past one request's body into the next request's parse.
///
/// The old read-and-truncate parser dropped those bytes on the floor,
/// which silently corrupted any connection carrying more than one
/// request. Keep one `RequestReader` per connection and call
/// [`RequestReader::read_request`] in a loop.
#[derive(Debug, Default)]
pub struct RequestReader {
    carry: Vec<u8>,
}

impl RequestReader {
    /// A reader with no carried-over bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one request, using carried-over bytes first.
    ///
    /// Socket timeouts are the caller's to configure (the server sets the
    /// idle timeout before each request).
    ///
    /// # Errors
    ///
    /// See [`RequestError`] for the cases.
    pub fn read_request(&mut self, stream: &mut TcpStream) -> Result<Request, RequestError> {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let mut scanned = 0usize;
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf, &mut scanned) {
                break pos;
            }
            if buf.len() > MAX_HEAD_BYTES {
                return Err(RequestError::TooLarge("request head too large".into()));
            }
            let n = read_some(stream, &mut chunk)?;
            if n == 0 {
                if buf.is_empty() {
                    return Err(RequestError::Closed);
                }
                return Err(RequestError::Io("connection closed mid-request".into()));
            }
            buf.extend_from_slice(&chunk[..n]);
        };

        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| RequestError::Malformed("head is not utf-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .ok_or_else(|| RequestError::Malformed("missing method".into()))?
            .to_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| RequestError::Malformed("missing target".into()))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| RequestError::Malformed("missing version".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(RequestError::Malformed(format!(
                "unsupported version {version:?}"
            )));
        }

        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length: Option<usize> = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                let parsed: usize = value.parse().map_err(|_| {
                    RequestError::Malformed(format!("bad content-length {value:?}"))
                })?;
                // Duplicate Content-Length headers are a request-smuggling
                // vector under keep-alive: two parsers that disagree on
                // which copy wins disagree on where the next request
                // starts. Reject even agreeing duplicates.
                if content_length.is_some() {
                    return Err(RequestError::Malformed(
                        "duplicate content-length header".into(),
                    ));
                }
                content_length = Some(parsed);
            }
            headers.push((name, value));
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(RequestError::TooLarge("body too large".into()));
        }

        // HTTP/1.0 defaults to close; 1.1 defaults to keep-alive. An
        // explicit Connection header (a comma-separated token list)
        // overrides the default either way.
        let mut close = version == "HTTP/1.0";
        if let Some(conn) = headers
            .iter()
            .find(|(k, _)| k == "connection")
            .map(|(_, v)| v.as_str())
        {
            for token in conn.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }

        let total = head_end + 4 + content_length;
        while buf.len() < total {
            let n = read_some(stream, &mut chunk)?;
            if n == 0 {
                return Err(RequestError::Io("connection closed mid-body".into()));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        // Anything past the body belongs to the next request.
        self.carry = buf.split_off(total);
        let body = buf.split_off(head_end + 4);

        let (path, query) = split_target(&target);
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            close,
        })
    }
}

fn write_all_retry(stream: &mut TcpStream, mut bytes: &[u8]) -> std::io::Result<()> {
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "wrote zero bytes",
                ))
            }
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes a response and flushes the stream. `keep_alive` selects the
/// `connection:` header; the caller decides whether to actually keep
/// reading afterwards.
///
/// # Errors
///
/// Returns a message on io errors.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> Result<(), String> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    write_all_retry(stream, head.as_bytes())
        .and_then(|()| write_all_retry(stream, &response.body))
        .and_then(|()| loop {
            match stream.flush() {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                other => break other,
            }
        })
        .map_err(|e| format!("write: {e}"))
}

/// A parsed response on the client side.
#[derive(Debug, Clone)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Reply {
    /// First header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A client connection that keeps the socket alive across requests,
/// mirroring the server's [`RequestReader`] carry-over on the response
/// side.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    addr: String,
    carry: Vec<u8>,
}

impl ClientConn {
    /// Connects to `addr` with the standard io timeouts.
    ///
    /// # Errors
    ///
    /// Returns a message on connection or socket-option errors.
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(IO_TIMEOUT))
            .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
            .map_err(|e| format!("timeouts: {e}"))?;
        Ok(Self {
            stream,
            addr: addr.to_string(),
            carry: Vec::new(),
        })
    }

    /// Sends one request and reads the reply, leaving the connection open.
    ///
    /// # Errors
    ///
    /// Returns a message on io or protocol errors.
    pub fn request(&mut self, method: &str, target: &str, body: &[u8]) -> Result<Reply, String> {
        self.request_with(method, target, body, &[])
    }

    /// Like [`ClientConn::request`], with extra headers (name, value).
    ///
    /// # Errors
    ///
    /// Returns a message on io or protocol errors.
    pub fn request_with(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
    ) -> Result<Reply, String> {
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        write_all_retry(&mut self.stream, head.as_bytes())
            .and_then(|()| write_all_retry(&mut self.stream, body))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write {}: {e}", self.addr))?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Reply, String> {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let mut scanned = 0usize;
        let mut eof = false;
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf, &mut scanned) {
                break pos;
            }
            if eof {
                return Err("response missing head terminator".into());
            }
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| format!("read {}: {e}", self.addr))?;
            if n == 0 {
                eof = true;
                continue;
            }
            buf.extend_from_slice(&chunk[..n]);
        };

        let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "response head not utf-8")?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or("empty response")?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;
        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length: Option<usize> = None;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().ok();
                }
                headers.push((name, value));
            }
        }

        let body = match content_length {
            Some(len) => {
                let total = head_end + 4 + len;
                while buf.len() < total && !eof {
                    let n = self
                        .stream
                        .read(&mut chunk)
                        .map_err(|e| format!("read {}: {e}", self.addr))?;
                    if n == 0 {
                        eof = true;
                    } else {
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
                if buf.len() < total {
                    return Err("connection closed mid-response".into());
                }
                self.carry = buf.split_off(total);
                buf.split_off(head_end + 4)
            }
            None => {
                // No content-length: the body runs to end-of-stream.
                while !eof {
                    let n = self
                        .stream
                        .read(&mut chunk)
                        .map_err(|e| format!("read {}: {e}", self.addr))?;
                    if n == 0 {
                        eof = true;
                    } else {
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
                buf.split_off(head_end + 4)
            }
        };
        Ok(Reply {
            status,
            headers,
            body,
        })
    }
}

/// Client side: sends one request to `addr` and returns
/// `(status, body)`. Opens a fresh connection per call and asks the
/// server to close it afterwards.
///
/// # Errors
///
/// Returns a message on connection, io, or protocol errors.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let mut conn = ClientConn::connect(addr)?;
    let reply = conn.request_with(method, target, body, &[("connection", "close")])?;
    Ok((reply.status, reply.body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splitting_and_decoding() {
        let (path, query) = split_target("/campaigns/abc/result?format=md&x=a%20b");
        assert_eq!(path, "/campaigns/abc/result");
        assert_eq!(query[0], ("format".into(), "md".into()));
        assert_eq!(query[1], ("x".into(), "a b".into()));
        let (path, query) = split_target("/figures");
        assert_eq!(path, "/figures");
        assert!(query.is_empty());
    }

    #[test]
    fn head_end_scan_resumes_where_it_left_off() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        let mut scanned = 0usize;
        assert!(find_head_end(&buf, &mut scanned).is_none());
        assert_eq!(scanned, buf.len());
        buf.extend_from_slice(b"\r\n");
        // The marker straddles the chunk boundary; the back-off of 3
        // bytes must still find it.
        assert_eq!(find_head_end(&buf, &mut scanned), Some(14));
    }

    #[test]
    fn roundtrip_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(IO_TIMEOUT))
                .expect("set timeout");
            let mut reader = RequestReader::new();
            let req = reader.read_request(&mut stream).expect("parse request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            assert_eq!(req.query("tag"), Some("t1"));
            assert!(req.close, "one-shot client asks for close");
            let resp = Response::json(200, req.body.clone());
            write_response(&mut stream, &resp, false).expect("write response");
        });
        let (status, body) = request(&addr, "POST", "/echo?tag=t1", b"{\"k\":1}").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"k\":1}");
        server.join().expect("server thread");
    }

    #[test]
    fn pipelined_requests_parse_byte_exactly() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(IO_TIMEOUT))
                .expect("set timeout");
            let mut reader = RequestReader::new();
            let a = reader.read_request(&mut stream).expect("first request");
            let b = reader.read_request(&mut stream).expect("second request");
            (a, b)
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Both requests land in one write: the bytes of the second must be
        // carried over, not truncated away with the first body.
        stream
            .write_all(
                b"POST /a HTTP/1.1\r\ncontent-length: 5\r\n\r\nAAAAAPOST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\nBBB",
            )
            .expect("write");
        let (a, b) = server.join().expect("join");
        assert_eq!(a.path, "/a");
        assert_eq!(a.body, b"AAAAA");
        assert!(!a.close);
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"BBB");
    }

    #[test]
    fn requests_split_at_every_byte_boundary_still_parse() {
        let raw = b"POST /split?x=1 HTTP/1.1\r\ncontent-length: 4\r\nx-probe: v\r\n\r\nwxyz";
        for cut in 1..raw.len() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let server = std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().expect("accept");
                stream
                    .set_read_timeout(Some(IO_TIMEOUT))
                    .expect("set timeout");
                RequestReader::new().read_request(&mut stream)
            });
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.write_all(&raw[..cut]).expect("first half");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(1));
            stream.write_all(&raw[cut..]).expect("second half");
            let req = server.join().expect("join").expect("parses");
            assert_eq!(req.path, "/split", "cut at {cut}");
            assert_eq!(req.body, b"wxyz", "cut at {cut}");
            assert_eq!(req.header("x-probe"), Some("v"), "cut at {cut}");
        }
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        for raw in [
            // Conflicting copies.
            b"POST /x HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 5\r\n\r\nAAAAA".as_slice(),
            // Even agreeing copies are a smuggling hazard.
            b"POST /x HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 3\r\n\r\nAAA".as_slice(),
        ] {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let server = std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().expect("accept");
                stream
                    .set_read_timeout(Some(IO_TIMEOUT))
                    .expect("set timeout");
                RequestReader::new().read_request(&mut stream)
            });
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(raw).expect("write");
            let err = server.join().expect("join").unwrap_err();
            assert!(
                matches!(err, RequestError::Malformed(ref m) if m.contains("content-length")),
                "{err}"
            );
        }
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(IO_TIMEOUT))
                .expect("set timeout");
            RequestReader::new().read_request(&mut stream)
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .expect("write");
        let err = server.join().expect("join").unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(IO_TIMEOUT))
                .expect("set timeout");
            RequestReader::new().read_request(&mut stream)
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /x HTTP/1.1\r\n").expect("write");
        let filler = format!("x-pad: {}\r\n", "y".repeat(4000));
        for _ in 0..((MAX_HEAD_BYTES / filler.len()) + 2) {
            if stream.write_all(filler.as_bytes()).is_err() {
                break; // Server already rejected and closed.
            }
        }
        let err = server.join().expect("join").unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
    }

    #[test]
    fn clean_close_and_idle_timeout_are_distinguished() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        // Peer connects and closes without sending anything: Closed.
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(IO_TIMEOUT))
                .expect("set timeout");
            RequestReader::new().read_request(&mut stream)
        });
        drop(TcpStream::connect(addr).expect("connect"));
        let err = server.join().expect("join").unwrap_err();
        assert!(matches!(err, RequestError::Closed), "{err}");

        // Peer connects and stalls: Timeout.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .expect("set timeout");
            RequestReader::new().read_request(&mut stream)
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let err = server.join().expect("join").unwrap_err();
        assert!(matches!(err, RequestError::Timeout), "{err}");
        drop(stream);
    }

    #[test]
    fn connection_header_controls_close() {
        for (raw, expect_close) in [
            (b"GET / HTTP/1.1\r\n\r\n".as_slice(), false),
            (
                b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n".as_slice(),
                true,
            ),
            (b"GET / HTTP/1.0\r\n\r\n".as_slice(), true),
            (
                b"GET / HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n".as_slice(),
                false,
            ),
        ] {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let server = std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().expect("accept");
                stream
                    .set_read_timeout(Some(IO_TIMEOUT))
                    .expect("set timeout");
                RequestReader::new().read_request(&mut stream)
            });
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(raw).expect("write");
            let req = server.join().expect("join").expect("parses");
            assert_eq!(
                req.close,
                expect_close,
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }
}
