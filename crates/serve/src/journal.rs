//! Crash-safe append-only job journal.
//!
//! The scheduler's queue lives in memory, so before this module a restart
//! silently dropped every queued and in-flight campaign — only the disk
//! result cache survived. The journal records each job's lifecycle as one
//! JSON line per event:
//!
//! ```text
//! {"event":"submitted","digest":"<16 hex>","campaign":{...canonical spec...}}
//! {"event":"started","digest":"<16 hex>"}
//! {"event":"done","digest":"<16 hex>","ok":true}
//! ```
//!
//! `submitted` carries the full campaign body so an unfinished job can be
//! re-run from the journal alone. On [`Journal::open`] the file is
//! replayed: jobs with a `done` record are dropped, everything else is
//! exposed via [`Journal::take_pending`] for the scheduler to requeue
//! (order preserved). A torn trailing line — the expected artifact of a
//! crash mid-append — is skipped with a warning, never an error.
//!
//! Once the scheduler has decided what actually needs requeueing (a
//! replayed job may already have its artifact on disk), it calls
//! [`Journal::compact`] to rewrite the file with just the survivors, so
//! the journal does not grow without bound across restarts.
//!
//! Appends are fail-soft: a full disk degrades durability, not service.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pythia_stats::json::Json;
use pythia_sweep::codec::Campaign;

/// A job recovered from the journal that has no `done` record.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The campaign digest (recomputed from the replayed body).
    pub digest: String,
    /// The campaign itself, ready to requeue.
    pub campaign: Campaign,
    /// Whether a `started` record was seen (the job was in flight when
    /// the previous process died).
    pub started: bool,
}

/// An append-only journal of job lifecycle events.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    pending: Vec<PendingJob>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, replaying any
    /// existing records into the pending list.
    ///
    /// # Errors
    ///
    /// Returns a message if the file or its parent directory cannot be
    /// created or read. Corrupt lines are skipped with a warning, not an
    /// error: a torn trailing line is the normal crash artifact.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, String> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        let pending = match std::fs::read_to_string(&path) {
            Ok(text) => replay(&text, &path),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            pending,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Takes the jobs replayed at open time (empties the list).
    pub fn take_pending(&mut self) -> Vec<PendingJob> {
        std::mem::take(&mut self.pending)
    }

    /// Rewrites the journal to contain exactly one `submitted` record per
    /// surviving job, dropping all completed history. Atomic
    /// (temp-file + rename); the append handle is swapped to the new file.
    ///
    /// # Errors
    ///
    /// Returns a message on io failures (the old journal is left intact).
    pub fn compact(&self, survivors: &[(String, Campaign)]) -> Result<(), String> {
        let mut text = String::new();
        for (digest, campaign) in survivors {
            text.push_str(&submitted_line(digest, campaign));
        }
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("{}: {e}", self.path.display())
        })?;
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        *self.file.lock().expect("journal lock poisoned") = file;
        Ok(())
    }

    /// Records a fresh submission (with the campaign body).
    pub fn record_submitted(&self, digest: &str, campaign: &Campaign) {
        self.append(&submitted_line(digest, campaign));
    }

    /// Records that a worker picked the job up.
    pub fn record_started(&self, digest: &str) {
        let line = Json::obj().set("event", "started").set("digest", digest);
        self.append(&format!("{}\n", line.render()));
    }

    /// Records completion (success or failure — either way the job must
    /// not be replayed).
    pub fn record_done(&self, digest: &str, ok: bool) {
        let line = Json::obj()
            .set("event", "done")
            .set("digest", digest)
            .set("ok", Json::Bool(ok));
        self.append(&format!("{}\n", line.render()));
    }

    fn append(&self, line: &str) {
        let mut file = self.file.lock().expect("journal lock poisoned");
        let outcome = file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data());
        if let Err(e) = outcome {
            // Fail-soft: losing durability beats refusing service.
            eprintln!("journal append failed ({}): {e}", self.path.display());
        }
    }
}

fn submitted_line(digest: &str, campaign: &Campaign) -> String {
    let line = Json::obj()
        .set("event", "submitted")
        .set("digest", digest)
        .set("campaign", campaign.to_json());
    format!("{}\n", line.render())
}

/// Replays journal text into the pending-job list.
fn replay(text: &str, path: &Path) -> Vec<PendingJob> {
    // Digest → position in `order`; preserves first-submission order.
    let mut order: Vec<PendingJob> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Some((event, digest, campaign)) = parse_line(line) else {
            // A torn line (crash mid-append) or stray corruption: skip.
            eprintln!(
                "journal {}: skipping unparseable line {}",
                path.display(),
                lineno + 1
            );
            continue;
        };
        match event.as_str() {
            "submitted" => {
                let Some(campaign) = campaign else {
                    eprintln!(
                        "journal {}: submitted record without campaign at line {}",
                        path.display(),
                        lineno + 1
                    );
                    continue;
                };
                // Trust the body, not the recorded digest: recomputing
                // guards against a corrupted digest field.
                let digest = campaign.digest();
                if !order.iter().any(|p| p.digest == digest) {
                    order.push(PendingJob {
                        digest,
                        campaign,
                        started: false,
                    });
                }
            }
            "started" => {
                if let Some(job) = order.iter_mut().find(|p| p.digest == digest) {
                    job.started = true;
                }
            }
            "done" => {
                order.retain(|p| p.digest != digest);
            }
            other => {
                eprintln!(
                    "journal {}: unknown event {other:?} at line {}",
                    path.display(),
                    lineno + 1
                );
            }
        }
    }
    order
}

/// Parses one journal line into `(event, digest, campaign)`.
fn parse_line(line: &str) -> Option<(String, String, Option<Campaign>)> {
    let json = pythia_stats::json::parse(line).ok()?;
    let event = json.get("event")?.as_str()?.to_string();
    let digest = json.get("digest")?.as_str()?.to_string();
    let campaign = match json.get("campaign") {
        Some(c) => Some(Campaign::from_json(c).ok()?),
        None => None,
    };
    Some((event, digest, campaign))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sweep::spec::{ConfigPoint, SweepSpec};
    use pythia_workloads::all_suites;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pythia-journal-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn tiny_campaign(tag: &str) -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        Campaign::single(
            SweepSpec::new(tag)
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, 4_000)),
        )
    }

    #[test]
    fn replay_roundtrip_preserves_unfinished_jobs_in_order() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (a, b, c) = (
            tiny_campaign("job-a"),
            tiny_campaign("job-b"),
            tiny_campaign("job-c"),
        );
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a);
            journal.record_submitted(&b.digest(), &b);
            journal.record_submitted(&c.digest(), &c);
            journal.record_started(&a.digest());
            journal.record_started(&b.digest());
            journal.record_done(&b.digest(), true);
        }
        let mut journal = Journal::open(&path).expect("reopen");
        let pending = journal.take_pending();
        assert_eq!(pending.len(), 2, "b is done, a and c survive");
        assert_eq!(pending[0].digest, a.digest());
        assert!(pending[0].started, "a was in flight");
        assert_eq!(pending[1].digest, c.digest());
        assert!(!pending[1].started, "c was still queued");
        // The replayed campaign is byte-identical to the original.
        assert_eq!(pending[0].campaign.canonical(), a.canonical());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        let a = tiny_campaign("torn-a");
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a);
        }
        // Simulate a crash mid-append of a second record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("append");
            f.write_all(b"{\"event\":\"submitted\",\"digest\":\"00")
                .expect("tear");
        }
        let mut journal = Journal::open(&path).expect("reopen tolerates tear");
        let pending = journal.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].digest, a.digest());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_to_survivors_only() {
        let path = tmp_path("compact");
        let _ = std::fs::remove_file(&path);
        let (a, b) = (tiny_campaign("comp-a"), tiny_campaign("comp-b"));
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a);
            journal.record_submitted(&b.digest(), &b);
            journal.record_done(&a.digest(), true);
        }
        {
            let mut journal = Journal::open(&path).expect("reopen");
            let pending = journal.take_pending();
            assert_eq!(pending.len(), 1);
            let survivors: Vec<(String, Campaign)> = pending
                .into_iter()
                .map(|p| (p.digest, p.campaign))
                .collect();
            journal.compact(&survivors).expect("compact");
            // Appends after compaction land in the new file.
            journal.record_done(&b.digest(), true);
        }
        let mut journal = Journal::open(&path).expect("final open");
        assert!(
            journal.take_pending().is_empty(),
            "b was compacted in, then done"
        );
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 2, "one submitted + one done record");
        let _ = std::fs::remove_file(&path);
    }
}
