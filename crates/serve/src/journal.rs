//! Crash-safe append-only job journal.
//!
//! The scheduler's queue lives in memory, so before this module a restart
//! silently dropped every queued and in-flight campaign — only the disk
//! result cache survived. The journal records each job's lifecycle as one
//! JSON line per event:
//!
//! ```text
//! {"event":"submitted","digest":"<16 hex>","tenant":"...","priority":1,"campaign":{...}}
//! {"event":"started","digest":"<16 hex>"}
//! {"event":"cell","digest":"<16 hex>","cell":3,"report":{...lossless SimReport...}}
//! {"event":"done","digest":"<16 hex>","ok":true}
//! ```
//!
//! `submitted` carries the full campaign body so an unfinished job can be
//! re-run from the journal alone; `cell` carries the completed cell's
//! full report (the lossless wire codec from `pythia-stats`), so a
//! restart re-executes **only the cells that had not finished** —
//! journaled reports are bit-identical to fresh simulations. On
//! [`Journal::open`] the file is replayed: jobs with a `done` record are
//! dropped, everything else is exposed via [`Journal::take_pending`] for
//! the scheduler to requeue (order preserved) with its completed cells
//! attached. A torn trailing line — the expected artifact of a crash
//! mid-append — is skipped with a warning, never an error.
//!
//! Once the scheduler has decided what actually needs requeueing (a
//! replayed job may already have its artifact on disk), it calls
//! [`Journal::compact`] to rewrite the file with just the survivors and
//! their surviving cell records, so the journal does not grow without
//! bound across restarts.
//!
//! Appends are fail-soft: a full disk degrades durability, not service.
//!
//! Journals written before the cell-level records (no `tenant`,
//! `priority` or `cell` lines) replay fine: the missing fields default to
//! the anonymous tenant at baseline priority with no completed cells.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pythia_sim::stats::SimReport;
use pythia_stats::json::{sim_report_from_wire, sim_report_wire_json, Json};
use pythia_sweep::codec::Campaign;

use crate::obs::ServeObs;

/// Tenant key recorded when a submission names none.
pub const DEFAULT_TENANT: &str = "default";

/// A job recovered from the journal that has no `done` record.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The campaign digest (recomputed from the replayed body).
    pub digest: String,
    /// The campaign itself, ready to requeue.
    pub campaign: Campaign,
    /// Submitter key for fair queueing.
    pub tenant: String,
    /// Scheduling weight recorded at submission.
    pub priority: u64,
    /// Whether a `started` record was seen (the job was in flight when
    /// the previous process died).
    pub started: bool,
    /// Completed cells recovered from `cell` records: `(flat job index,
    /// report)`, in completion order, deduplicated by index.
    pub cells: Vec<(usize, SimReport)>,
}

/// An append-only journal of job lifecycle events.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    pending: Vec<PendingJob>,
    /// Shared observability bundle: fsync-latency histogram + logger.
    obs: Arc<ServeObs>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` with a private
    /// default observability bundle (warn-level stderr logging). The
    /// server passes its shared bundle via [`Journal::open_with_obs`]
    /// instead, so fsync timings land in the service registry.
    ///
    /// # Errors
    ///
    /// Returns a message if the file or its parent directory cannot be
    /// created or read. Corrupt lines are skipped with a warning, not an
    /// error: a torn trailing line is the normal crash artifact.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, String> {
        Self::open_with_obs(path, Arc::new(ServeObs::default()))
    }

    /// Opens the journal with a shared observability bundle (see
    /// [`Journal::open`] for semantics and errors).
    ///
    /// # Errors
    ///
    /// Returns a message if the file or its parent directory cannot be
    /// created or read.
    pub fn open_with_obs(path: impl Into<PathBuf>, obs: Arc<ServeObs>) -> Result<Self, String> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        let pending = match std::fs::read_to_string(&path) {
            Ok(text) => replay(&text, &path, &obs),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            pending,
            obs,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Takes the jobs replayed at open time (empties the list).
    pub fn take_pending(&mut self) -> Vec<PendingJob> {
        std::mem::take(&mut self.pending)
    }

    /// Rewrites the journal to contain exactly one `submitted` record per
    /// surviving job — followed by its surviving `cell` records — and
    /// drops all completed history. Atomic (temp-file + rename); the
    /// append handle is swapped to the new file.
    ///
    /// # Errors
    ///
    /// Returns a message on io failures (the old journal is left intact).
    pub fn compact(&self, survivors: &[PendingJob]) -> Result<(), String> {
        let mut text = String::new();
        for job in survivors {
            text.push_str(&submitted_line(
                &job.digest,
                &job.campaign,
                &job.tenant,
                job.priority,
            ));
            for (index, report) in &job.cells {
                text.push_str(&cell_line(&job.digest, *index, report));
            }
        }
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("{}: {e}", self.path.display())
        })?;
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        *self.file.lock().expect("journal lock poisoned") = file;
        Ok(())
    }

    /// Records a fresh submission (with the campaign body and its
    /// scheduling identity).
    pub fn record_submitted(&self, digest: &str, campaign: &Campaign, tenant: &str, priority: u64) {
        self.append(&submitted_line(digest, campaign, tenant, priority));
    }

    /// Records that a worker picked the job's first cell up.
    pub fn record_started(&self, digest: &str) {
        let line = Json::obj().set("event", "started").set("digest", digest);
        self.append(&format!("{}\n", line.render()));
    }

    /// Records one completed cell with its full report, so a restart can
    /// resume the campaign without re-executing it.
    pub fn record_cell(&self, digest: &str, index: usize, report: &SimReport) {
        self.append(&cell_line(digest, index, report));
    }

    /// Records completion (success or failure — either way the job must
    /// not be replayed).
    pub fn record_done(&self, digest: &str, ok: bool) {
        let line = Json::obj()
            .set("event", "done")
            .set("digest", digest)
            .set("ok", Json::Bool(ok));
        self.append(&format!("{}\n", line.render()));
    }

    fn append(&self, line: &str) {
        let started = std::time::Instant::now();
        let mut file = self.file.lock().expect("journal lock poisoned");
        let outcome = file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data());
        self.obs
            .journal_fsync_us
            .record(started.elapsed().as_micros() as u64);
        if let Err(e) = outcome {
            // Fail-soft: losing durability beats refusing service.
            self.obs.logger().error(
                "journal",
                "append failed",
                &[
                    ("path", self.path.display().to_string()),
                    ("error", e.to_string()),
                ],
            );
        }
    }
}

fn submitted_line(digest: &str, campaign: &Campaign, tenant: &str, priority: u64) -> String {
    let line = Json::obj()
        .set("event", "submitted")
        .set("digest", digest)
        .set("tenant", tenant)
        .set("priority", priority)
        .set("campaign", campaign.to_json());
    format!("{}\n", line.render())
}

fn cell_line(digest: &str, index: usize, report: &SimReport) -> String {
    let line = Json::obj()
        .set("event", "cell")
        .set("digest", digest)
        .set("cell", index as u64)
        .set("report", sim_report_wire_json(report));
    format!("{}\n", line.render())
}

/// Replays journal text into the pending-job list.
fn replay(text: &str, path: &Path, obs: &ServeObs) -> Vec<PendingJob> {
    // Digest → position in `order`; preserves first-submission order.
    let mut order: Vec<PendingJob> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let skip = |what: &str| {
            obs.logger().warn(
                "journal",
                "skipping record",
                &[
                    ("path", path.display().to_string()),
                    ("what", what.to_string()),
                    ("line", (lineno + 1).to_string()),
                ],
            );
        };
        let Ok(json) = pythia_stats::json::parse(line) else {
            // A torn line (crash mid-append) or stray corruption: skip.
            skip("unparseable line");
            continue;
        };
        let (Some(event), Some(digest)) = (
            json.get("event").and_then(Json::as_str),
            json.get("digest").and_then(Json::as_str),
        ) else {
            skip("record without event/digest");
            continue;
        };
        match event {
            "submitted" => {
                let campaign = json
                    .get("campaign")
                    .and_then(|c| Campaign::from_json(c).ok());
                let Some(campaign) = campaign else {
                    skip("submitted record without a valid campaign");
                    continue;
                };
                // Trust the body, not the recorded digest: recomputing
                // guards against a corrupted digest field.
                let digest = campaign.digest();
                if !order.iter().any(|p| p.digest == digest) {
                    order.push(PendingJob {
                        digest,
                        campaign,
                        tenant: json
                            .get("tenant")
                            .and_then(Json::as_str)
                            .unwrap_or(DEFAULT_TENANT)
                            .to_string(),
                        priority: json
                            .get("priority")
                            .and_then(Json::as_u64)
                            .unwrap_or(1)
                            .max(1),
                        started: false,
                        cells: Vec::new(),
                    });
                }
            }
            "started" => {
                if let Some(job) = order.iter_mut().find(|p| p.digest == digest) {
                    job.started = true;
                }
            }
            "cell" => {
                let index = json.get("cell").and_then(Json::as_u64);
                let report = json
                    .get("report")
                    .and_then(|r| sim_report_from_wire(r).ok());
                let (Some(index), Some(report)) = (index, report) else {
                    skip("cell record without a valid index/report");
                    continue;
                };
                if let Some(job) = order.iter_mut().find(|p| p.digest == digest) {
                    let index = index as usize;
                    if !job.cells.iter().any(|(i, _)| *i == index) {
                        job.cells.push((index, report));
                    }
                }
            }
            "done" => {
                order.retain(|p| p.digest != digest);
            }
            other => {
                skip(&format!("unknown event {other:?}"));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sweep::spec::{ConfigPoint, SweepSpec};
    use pythia_workloads::all_suites;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pythia-journal-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn tiny_campaign(tag: &str) -> Campaign {
        let w = all_suites()
            .into_iter()
            .find(|w| w.name == "429.mcf-184B")
            .expect("known workload");
        Campaign::single(
            SweepSpec::new(tag)
                .with_workloads([w])
                .with_prefetchers(&["stride"])
                .with_config(ConfigPoint::single_core("base", 1_000, 4_000)),
        )
    }

    fn tiny_report(seed: u64) -> SimReport {
        SimReport {
            cores: vec![pythia_sim::stats::CoreStats {
                instructions: seed,
                cycles: seed * 2,
                ..Default::default()
            }],
            l1d: vec![],
            l2: vec![],
            llc: Default::default(),
            dram: Default::default(),
            prefetchers: vec![],
        }
    }

    #[test]
    fn replay_roundtrip_preserves_unfinished_jobs_in_order() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (a, b, c) = (
            tiny_campaign("job-a"),
            tiny_campaign("job-b"),
            tiny_campaign("job-c"),
        );
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a, "alice", 3);
            journal.record_submitted(&b.digest(), &b, DEFAULT_TENANT, 1);
            journal.record_submitted(&c.digest(), &c, DEFAULT_TENANT, 1);
            journal.record_started(&a.digest());
            journal.record_started(&b.digest());
            journal.record_done(&b.digest(), true);
        }
        let mut journal = Journal::open(&path).expect("reopen");
        let pending = journal.take_pending();
        assert_eq!(pending.len(), 2, "b is done, a and c survive");
        assert_eq!(pending[0].digest, a.digest());
        assert!(pending[0].started, "a was in flight");
        assert_eq!(pending[0].tenant, "alice");
        assert_eq!(pending[0].priority, 3);
        assert_eq!(pending[1].digest, c.digest());
        assert!(!pending[1].started, "c was still queued");
        // The replayed campaign is byte-identical to the original.
        assert_eq!(pending[0].campaign.canonical(), a.canonical());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_records_replay_with_their_reports() {
        let path = tmp_path("cells");
        let _ = std::fs::remove_file(&path);
        let a = tiny_campaign("cell-a");
        let (r0, r2) = (tiny_report(10), tiny_report(30));
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a, DEFAULT_TENANT, 1);
            journal.record_started(&a.digest());
            journal.record_cell(&a.digest(), 0, &r0);
            journal.record_cell(&a.digest(), 2, &r2);
            // A duplicate index (crash between journal write and in-memory
            // bookkeeping, then re-execution) keeps the first record.
            journal.record_cell(&a.digest(), 0, &tiny_report(99));
        }
        let mut journal = Journal::open(&path).expect("reopen");
        let pending = journal.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(
            pending[0].cells.len(),
            2,
            "two distinct cells, duplicate dropped"
        );
        assert_eq!(pending[0].cells[0], (0, r0));
        assert_eq!(pending[0].cells[1], (2, r2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_cell_journals_replay_with_defaults() {
        // A journal written before tenant/priority/cell records existed
        // must still replay (fields default, no cells attached).
        let path = tmp_path("legacy");
        let _ = std::fs::remove_file(&path);
        let a = tiny_campaign("legacy-a");
        let line = Json::obj()
            .set("event", "submitted")
            .set("digest", a.digest().as_str())
            .set("campaign", a.to_json());
        std::fs::write(&path, format!("{}\n", line.render())).expect("write");
        let mut journal = Journal::open(&path).expect("open");
        let pending = journal.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].tenant, DEFAULT_TENANT);
        assert_eq!(pending[0].priority, 1);
        assert!(pending[0].cells.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        let a = tiny_campaign("torn-a");
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a, DEFAULT_TENANT, 1);
        }
        // Simulate a crash mid-append of a second record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("append");
            f.write_all(b"{\"event\":\"submitted\",\"digest\":\"00")
                .expect("tear");
        }
        let mut journal = Journal::open(&path).expect("reopen tolerates tear");
        let pending = journal.take_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].digest, a.digest());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_to_survivors_only() {
        let path = tmp_path("compact");
        let _ = std::fs::remove_file(&path);
        let (a, b) = (tiny_campaign("comp-a"), tiny_campaign("comp-b"));
        {
            let journal = Journal::open(&path).expect("open");
            journal.record_submitted(&a.digest(), &a, DEFAULT_TENANT, 1);
            journal.record_submitted(&b.digest(), &b, "bob", 2);
            journal.record_cell(&b.digest(), 1, &tiny_report(7));
            journal.record_done(&a.digest(), true);
        }
        {
            let mut journal = Journal::open(&path).expect("reopen");
            let pending = journal.take_pending();
            assert_eq!(pending.len(), 1);
            journal.compact(&pending).expect("compact");
            // Appends after compaction land in the new file.
            journal.record_done(&b.digest(), true);
        }
        let mut journal = Journal::open(&path).expect("final open");
        assert!(
            journal.take_pending().is_empty(),
            "b was compacted in, then done"
        );
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(
            text.lines().count(),
            3,
            "one submitted + one cell + one done record"
        );
        // The compacted submitted line kept tenant and priority.
        assert!(text.contains("\"bob\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
