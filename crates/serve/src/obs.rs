//! Service observability: one [`ServeObs`] bundle — structured logger,
//! metric [`Registry`], and pre-registered instrument handles — threaded
//! explicitly through the server, scheduler and journal (no globals).
//!
//! The handles cover the service's hot paths:
//!
//! * per-route request latency and response body size (`handle_connection`),
//! * cell queue wait (submission → worker claim) and execution time
//!   (`worker_loop`),
//! * journal fsync latency (`Journal::append`).
//!
//! Everything is registered in the bundle's [`Registry`], so
//! `GET /metrics?format=prom` renders the whole set with
//! [`pythia_obs::prom::render`] and the JSON `/metrics` view folds in
//! percentile summaries. Components constructed without an explicit
//! bundle (unit tests, bare [`crate::scheduler::Scheduler::start`]) get a
//! private default bundle logging at `warn`, which preserves the old
//! "errors reach stderr" behaviour without test noise.

use std::sync::Arc;

use pythia_obs::logger::{Level, Logger};
use pythia_obs::metrics::{Histogram, Registry};

/// Route keys used as the `route` label of the HTTP histograms — a small
/// fixed vocabulary so label cardinality stays bounded no matter what
/// paths clients probe.
pub const ROUTE_KEYS: &[&str] = &["figures", "metrics", "submit", "status", "result", "other"];

/// Classifies a request into one of [`ROUTE_KEYS`].
pub fn route_key(method: &str, path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["figures"]) => "figures",
        ("GET", ["metrics"]) => "metrics",
        ("POST", ["campaigns"]) => "submit",
        ("GET", ["campaigns", _]) => "status",
        ("GET", ["campaigns", _, "result"]) => "result",
        _ => "other",
    }
}

/// Per-route instrument handles.
struct RouteMetrics {
    key: &'static str,
    latency_us: Arc<Histogram>,
    body_bytes: Arc<Histogram>,
}

/// The service's observability bundle. Built once per server (or once
/// per bare scheduler/journal in tests) and shared by `Arc`.
pub struct ServeObs {
    logger: Logger,
    registry: Registry,
    routes: Vec<RouteMetrics>,
    /// Time a cell spent between job enqueue and worker claim, in µs.
    pub cell_queue_wait_us: Arc<Histogram>,
    /// Wall time a worker spent simulating one cell, in µs.
    pub cell_execution_us: Arc<Histogram>,
    /// Latency of one journal append (write + flush + fsync), in µs.
    pub journal_fsync_us: Arc<Histogram>,
}

impl ServeObs {
    /// A bundle logging to stderr at `level`.
    pub fn new(level: Level) -> Self {
        Self::with_logger(Logger::stderr(level))
    }

    /// A bundle with a caller-supplied logger (tests capture output this
    /// way).
    pub fn with_logger(logger: Logger) -> Self {
        let registry = Registry::new();
        let routes = ROUTE_KEYS
            .iter()
            .map(|&key| RouteMetrics {
                key,
                latency_us: registry.histogram_with(
                    "pythia_http_request_duration_us",
                    "Request handling latency per route, in microseconds",
                    &[("route", key)],
                ),
                body_bytes: registry.histogram_with(
                    "pythia_http_response_bytes",
                    "Response body size per route, in bytes",
                    &[("route", key)],
                ),
            })
            .collect();
        let cell_queue_wait_us = registry.histogram(
            "pythia_cell_queue_wait_us",
            "Cell wait between job enqueue and worker claim, in microseconds",
        );
        let cell_execution_us = registry.histogram(
            "pythia_cell_execution_us",
            "Cell simulation wall time, in microseconds",
        );
        let journal_fsync_us = registry.histogram(
            "pythia_journal_fsync_us",
            "Journal append latency (write+flush+fsync), in microseconds",
        );
        Self {
            logger,
            registry,
            routes,
            cell_queue_wait_us,
            cell_execution_us,
            journal_fsync_us,
        }
    }

    /// The structured logger.
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// The metric registry (for Prometheus rendering and JSON summaries).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one served request against its route's histograms.
    pub fn record_request(&self, route: &str, latency_us: u64, body_bytes: u64) {
        if let Some(r) = self.routes.iter().find(|r| r.key == route) {
            r.latency_us.record(latency_us);
            r.body_bytes.record(body_bytes);
        }
    }

    /// The latency histogram of one route (JSON summaries, tests).
    pub fn route_latency(&self, route: &str) -> Option<&Arc<Histogram>> {
        self.routes
            .iter()
            .find(|r| r.key == route)
            .map(|r| &r.latency_us)
    }
}

impl Default for ServeObs {
    /// Warn-level stderr logging: errors still surface, tests stay quiet.
    fn default() -> Self {
        Self::new(Level::Warn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_classification() {
        assert_eq!(route_key("GET", "/figures"), "figures");
        assert_eq!(route_key("GET", "/metrics"), "metrics");
        assert_eq!(route_key("POST", "/campaigns"), "submit");
        assert_eq!(route_key("GET", "/campaigns/0123456789abcdef"), "status");
        assert_eq!(
            route_key("GET", "/campaigns/0123456789abcdef/result"),
            "result"
        );
        assert_eq!(route_key("PUT", "/figures"), "other");
        assert_eq!(route_key("GET", "/nope"), "other");
    }

    #[test]
    fn request_recording_lands_in_the_right_route() {
        let obs = ServeObs::default();
        obs.record_request("metrics", 150, 900);
        obs.record_request("other", 10, 20);
        let h = obs.route_latency("metrics").expect("known route");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 150);
        assert_eq!(obs.route_latency("figures").expect("known").count(), 0);
        // Unknown keys are dropped, not panicked on.
        obs.record_request("bogus", 1, 1);
    }

    #[test]
    fn registry_renders_clean_prometheus_text() {
        let obs = ServeObs::default();
        obs.record_request("submit", 2_000, 512);
        obs.cell_execution_us.record(30_000);
        let text = pythia_obs::prom::render(obs.registry());
        assert!(text.contains("pythia_http_request_duration_us_bucket"));
        assert!(text.contains("route=\"submit\""));
        let problems = pythia_obs::prom::lint(&text);
        assert!(problems.is_empty(), "{problems:?}");
    }
}
