//! # pythia-serve
//!
//! A long-running campaign service over the deterministic sweep engine:
//! many clients submit figure/table campaigns, duplicate campaigns cost
//! one simulation, and results are served from a content-addressed cache.
//!
//! The stack, bottom to top:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 subset on `std::net` (this build
//!   environment has no network crates): persistent keep-alive
//!   connections with byte-exact pipelining, `Content-Length` bodies,
//!   strict limits, and typed read errors (timeout vs malformed vs
//!   oversized) so the server can answer 408/400/413 precisely.
//! * [`journal`] — a crash-safe append-only job journal: queued and
//!   in-flight campaigns are replayed (and the journal compacted) on
//!   restart instead of being silently dropped.
//! * [`scheduler`] — a bounded job queue + worker pool running
//!   [`pythia_sweep::engine::run_all`], with in-flight dedup (identical
//!   digests coalesce onto one job), per-job status, service counters,
//!   journal-backed recovery, and 429-style backpressure when the queue
//!   is full.
//! * [`server`] — routing: `POST /campaigns` (submit a figure id or a
//!   canonical spec), `GET /campaigns/<digest>` (status),
//!   `GET /campaigns/<digest>/result` (md/JSON/CSV via the existing
//!   [`pythia_sweep::SweepResult`] formatters, with digest-derived
//!   `ETag`/`If-None-Match` 304s), `GET /figures` (registry listing),
//!   and `GET /metrics` (queue depth, worker occupancy, store and
//!   connection counters, aggregate Minst/s). A server-wide connection
//!   cap sheds overload with 503.
//! * [`client`] — the `pythia-cli submit` side, built on the same
//!   [`http`] module.
//!
//! Content addressing comes from [`pythia_sweep::codec`]: a campaign's
//! canonical encoding digests to a stable id, simulations are
//! bit-deterministic, so "same digest" means "byte-identical result" —
//! cache hits (in memory or through [`pythia_sweep::ResultStore`]) are
//! indistinguishable from fresh runs minus the wall-clock telemetry.
//!
//! # Example
//!
//! ```no_run
//! use pythia_serve::server::{ServeConfig, Server};
//!
//! let server = Server::bind("127.0.0.1:7071", &ServeConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.serve_forever().unwrap();
//! ```

pub mod client;
pub mod http;
pub mod journal;
pub mod obs;
pub mod scheduler;
pub mod server;

pub use journal::Journal;
pub use obs::ServeObs;
pub use scheduler::{JobStatus, Scheduler, SubmitError};
pub use server::{ConnStats, ServeConfig, Server, ServerHandle};
