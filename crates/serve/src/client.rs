//! Client helpers over [`crate::http::request`] — the machinery behind
//! `pythia-cli submit`.

use std::time::{Duration, Instant};

use pythia_stats::json::{parse, Json};

use crate::http;

/// A submission acknowledgement.
#[derive(Debug, Clone)]
pub struct Submitted {
    /// Campaign digest (the job id to poll).
    pub digest: String,
    /// Status at submission time (`"queued"`, `"running"`, `"done"`, ...).
    pub status: String,
    /// Whether the service answered from its cache.
    pub cached: bool,
}

fn json_of(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "response is not utf-8".to_string())?;
    parse(text)
}

fn error_of(status: u16, body: &[u8]) -> String {
    let detail = json_of(body)
        .ok()
        .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| String::from_utf8_lossy(body).into_owned());
    format!("HTTP {status}: {detail}")
}

/// Submits a campaign body (already-rendered JSON) to `addr`.
///
/// # Errors
///
/// Returns a message on transport errors or non-2xx responses (a full
/// queue surfaces as the service's 429 message).
pub fn submit(addr: &str, body: &str) -> Result<Submitted, String> {
    let (status, response) = http::request(addr, "POST", "/campaigns", body.as_bytes())?;
    if status != 200 && status != 202 {
        return Err(error_of(status, &response));
    }
    let json = json_of(&response)?;
    let field = |key: &str| {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("submission response missing {key:?}"))
    };
    Ok(Submitted {
        digest: field("digest")?,
        status: field("status")?,
        cached: json.get("cached").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Submits a registry figure by id.
///
/// # Errors
///
/// See [`submit`].
pub fn submit_figure(addr: &str, figure: &str) -> Result<Submitted, String> {
    submit(addr, &Json::obj().set("figure", figure).render())
}

/// Submits a registry figure by id under a tenant key (fair-queueing
/// bucket) and a weighted-round-robin priority. An empty tenant means
/// the service default.
///
/// # Errors
///
/// See [`submit`].
pub fn submit_figure_as(
    addr: &str,
    figure: &str,
    tenant: &str,
    priority: u64,
) -> Result<Submitted, String> {
    let mut body = Json::obj().set("figure", figure).set("priority", priority);
    if !tenant.is_empty() {
        body = body.set("tenant", tenant);
    }
    submit(addr, &body.render())
}

/// Fetches the status document of a digest.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn status(addr: &str, digest: &str) -> Result<Json, String> {
    let (code, body) = http::request(addr, "GET", &format!("/campaigns/{digest}"), b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    json_of(&body)
}

/// Polls status every `poll` until the job reports `done`, failing on
/// `failed` or after `timeout`.
///
/// # Errors
///
/// Returns the failure message, a timeout message, or transport errors.
pub fn wait_done(
    addr: &str,
    digest: &str,
    poll: Duration,
    timeout: Duration,
) -> Result<(), String> {
    wait_done_with(addr, digest, poll, timeout, |_, _| {})
}

/// Like [`wait_done`], invoking `on_progress(cells_done, cells_total)`
/// after every status poll that carries cell progress.
///
/// # Errors
///
/// See [`wait_done`].
pub fn wait_done_with(
    addr: &str,
    digest: &str,
    poll: Duration,
    timeout: Duration,
    mut on_progress: impl FnMut(u64, u64),
) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let doc = status(addr, digest)?;
        let cells = |key: &str| {
            doc.get("cells")
                .and_then(|c| c.get(key))
                .and_then(Json::as_u64)
        };
        if let (Some(done), Some(total)) = (cells("done"), cells("total")) {
            on_progress(done, total);
        }
        match doc.get("status").and_then(Json::as_str) {
            Some("done") => return Ok(()),
            Some("failed") => {
                let e = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure");
                return Err(format!("campaign {digest} failed: {e}"));
            }
            Some(_) => {}
            None => return Err("status response missing \"status\"".into()),
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "campaign {digest} not done after {:.0} s",
                timeout.as_secs_f64()
            ));
        }
        std::thread::sleep(poll);
    }
}

/// Fetches the rendered result of a done campaign.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses (409 while
/// the job is still running).
pub fn result(addr: &str, digest: &str, format: &str) -> Result<String, String> {
    let (code, body) = http::request(
        addr,
        "GET",
        &format!("/campaigns/{digest}/result?format={format}"),
        b"",
    )?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    String::from_utf8(body).map_err(|_| "result is not utf-8".into())
}

/// A merged-so-far snapshot fetched with `?partial=1`.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// The rendered prefix (the full artifact when `complete`).
    pub body: String,
    /// Cells finished so far (`x-cells-done`).
    pub cells_done: u64,
    /// Total planned cells (`x-cells-total`).
    pub cells_total: u64,
    /// Whether the campaign is done and `body` is the final artifact.
    pub complete: bool,
}

/// Fetches the merged-so-far prefix of a campaign (`?partial=1`): a
/// `206` snapshot while cells are still running, or the final `200`
/// artifact once done. Every snapshot's rows are a prefix of the final
/// row order.
///
/// # Errors
///
/// Returns a message on transport errors, unknown digests (404), and
/// failed campaigns (409).
pub fn partial_result(addr: &str, digest: &str, format: &str) -> Result<PartialResult, String> {
    let mut conn = http::ClientConn::connect(addr)?;
    let target = format!("/campaigns/{digest}/result?format={format}&partial=1");
    let reply = conn.request_with("GET", &target, b"", &[("connection", "close")])?;
    if reply.status != 200 && reply.status != 206 {
        return Err(error_of(reply.status, &reply.body));
    }
    let header_num = |name: &str| {
        reply
            .header(name)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    let cells_done = header_num("x-cells-done");
    let cells_total = header_num("x-cells-total");
    let complete = reply.status == 200;
    Ok(PartialResult {
        body: String::from_utf8(reply.body).map_err(|_| "result is not utf-8".to_string())?,
        cells_done,
        cells_total,
        complete,
    })
}

/// Fetches the figure listing.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn figures(addr: &str) -> Result<Json, String> {
    let (code, body) = http::request(addr, "GET", "/figures", b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    json_of(&body)
}

/// Fetches the `/metrics` snapshot.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn metrics(addr: &str) -> Result<Json, String> {
    let (code, body) = http::request(addr, "GET", "/metrics", b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    json_of(&body)
}

/// Fetches `GET /metrics?format=prom` — the Prometheus text exposition.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn metrics_prom(addr: &str) -> Result<String, String> {
    let (code, body) = http::request(addr, "GET", "/metrics?format=prom", b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    String::from_utf8(body).map_err(|_| "response is not utf-8".to_string())
}

/// Outcome of a conditional result fetch.
#[derive(Debug, Clone)]
pub enum CachedFetch {
    /// The server's `ETag` matched: the caller's copy is current.
    NotModified,
    /// A fresh body, with the `ETag` to send next time.
    Fresh {
        /// The validator for the next conditional fetch.
        etag: Option<String>,
        /// The rendered result.
        body: String,
    },
}

/// Fetches the rendered result of a done campaign conditionally: when
/// `etag` is supplied and still matches, the server answers 304 and no
/// body is transferred.
///
/// # Errors
///
/// Returns a message on transport errors or non-200/304 responses (409
/// while the job is still running).
pub fn result_conditional(
    addr: &str,
    digest: &str,
    format: &str,
    etag: Option<&str>,
) -> Result<CachedFetch, String> {
    let mut conn = http::ClientConn::connect(addr)?;
    let target = format!("/campaigns/{digest}/result?format={format}");
    let mut headers: Vec<(&str, &str)> = vec![("connection", "close")];
    if let Some(etag) = etag {
        headers.push(("if-none-match", etag));
    }
    let reply = conn.request_with("GET", &target, b"", &headers)?;
    match reply.status {
        304 => Ok(CachedFetch::NotModified),
        200 => Ok(CachedFetch::Fresh {
            etag: reply.header("etag").map(str::to_string),
            body: String::from_utf8(reply.body).map_err(|_| "result is not utf-8".to_string())?,
        }),
        code => Err(error_of(code, &reply.body)),
    }
}
