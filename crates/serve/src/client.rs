//! Client helpers over [`crate::http::request`] — the machinery behind
//! `pythia-cli submit`.

use std::time::{Duration, Instant};

use pythia_stats::json::{parse, Json};

use crate::http;

/// A submission acknowledgement.
#[derive(Debug, Clone)]
pub struct Submitted {
    /// Campaign digest (the job id to poll).
    pub digest: String,
    /// Status at submission time (`"queued"`, `"running"`, `"done"`, ...).
    pub status: String,
    /// Whether the service answered from its cache.
    pub cached: bool,
}

fn json_of(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "response is not utf-8".to_string())?;
    parse(text)
}

fn error_of(status: u16, body: &[u8]) -> String {
    let detail = json_of(body)
        .ok()
        .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| String::from_utf8_lossy(body).into_owned());
    format!("HTTP {status}: {detail}")
}

/// Submits a campaign body (already-rendered JSON) to `addr`.
///
/// # Errors
///
/// Returns a message on transport errors or non-2xx responses (a full
/// queue surfaces as the service's 429 message).
pub fn submit(addr: &str, body: &str) -> Result<Submitted, String> {
    let (status, response) = http::request(addr, "POST", "/campaigns", body.as_bytes())?;
    if status != 200 && status != 202 {
        return Err(error_of(status, &response));
    }
    let json = json_of(&response)?;
    let field = |key: &str| {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("submission response missing {key:?}"))
    };
    Ok(Submitted {
        digest: field("digest")?,
        status: field("status")?,
        cached: json.get("cached").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Submits a registry figure by id.
///
/// # Errors
///
/// See [`submit`].
pub fn submit_figure(addr: &str, figure: &str) -> Result<Submitted, String> {
    submit(addr, &Json::obj().set("figure", figure).render())
}

/// Fetches the status document of a digest.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn status(addr: &str, digest: &str) -> Result<Json, String> {
    let (code, body) = http::request(addr, "GET", &format!("/campaigns/{digest}"), b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    json_of(&body)
}

/// Polls status every `poll` until the job reports `done`, failing on
/// `failed` or after `timeout`.
///
/// # Errors
///
/// Returns the failure message, a timeout message, or transport errors.
pub fn wait_done(
    addr: &str,
    digest: &str,
    poll: Duration,
    timeout: Duration,
) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let doc = status(addr, digest)?;
        match doc.get("status").and_then(Json::as_str) {
            Some("done") => return Ok(()),
            Some("failed") => {
                let e = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure");
                return Err(format!("campaign {digest} failed: {e}"));
            }
            Some(_) => {}
            None => return Err("status response missing \"status\"".into()),
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "campaign {digest} not done after {:.0} s",
                timeout.as_secs_f64()
            ));
        }
        std::thread::sleep(poll);
    }
}

/// Fetches the rendered result of a done campaign.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses (409 while
/// the job is still running).
pub fn result(addr: &str, digest: &str, format: &str) -> Result<String, String> {
    let (code, body) = http::request(
        addr,
        "GET",
        &format!("/campaigns/{digest}/result?format={format}"),
        b"",
    )?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    String::from_utf8(body).map_err(|_| "result is not utf-8".into())
}

/// Fetches the figure listing.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn figures(addr: &str) -> Result<Json, String> {
    let (code, body) = http::request(addr, "GET", "/figures", b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    json_of(&body)
}

/// Fetches the `/metrics` snapshot.
///
/// # Errors
///
/// Returns a message on transport errors or non-200 responses.
pub fn metrics(addr: &str) -> Result<Json, String> {
    let (code, body) = http::request(addr, "GET", "/metrics", b"")?;
    if code != 200 {
        return Err(error_of(code, &body));
    }
    json_of(&body)
}

/// Outcome of a conditional result fetch.
#[derive(Debug, Clone)]
pub enum CachedFetch {
    /// The server's `ETag` matched: the caller's copy is current.
    NotModified,
    /// A fresh body, with the `ETag` to send next time.
    Fresh {
        /// The validator for the next conditional fetch.
        etag: Option<String>,
        /// The rendered result.
        body: String,
    },
}

/// Fetches the rendered result of a done campaign conditionally: when
/// `etag` is supplied and still matches, the server answers 304 and no
/// body is transferred.
///
/// # Errors
///
/// Returns a message on transport errors or non-200/304 responses (409
/// while the job is still running).
pub fn result_conditional(
    addr: &str,
    digest: &str,
    format: &str,
    etag: Option<&str>,
) -> Result<CachedFetch, String> {
    let mut conn = http::ClientConn::connect(addr)?;
    let target = format!("/campaigns/{digest}/result?format={format}");
    let mut headers: Vec<(&str, &str)> = vec![("connection", "close")];
    if let Some(etag) = etag {
        headers.push(("if-none-match", etag));
    }
    let reply = conn.request_with("GET", &target, b"", &headers)?;
    match reply.status {
        304 => Ok(CachedFetch::NotModified),
        200 => Ok(CachedFetch::Fresh {
            etag: reply.header("etag").map(str::to_string),
            body: String::from_utf8(reply.body).map_err(|_| "result is not utf-8".to_string())?,
        }),
        code => Err(error_of(code, &reply.body)),
    }
}
