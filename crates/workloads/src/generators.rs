//! The trace generators: a [`TraceSpec`] describes a workload;
//! [`TraceSpec::stream`] yields its records on demand as a [`TraceStream`]
//! (a [`TraceSource`] the simulator pulls from directly, in O(1) memory),
//! and [`TraceSpec::generate`] is the collecting convenience for code that
//! wants the whole trace in a `Vec`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pythia_sim::addr::{LINES_PER_PAGE, PAGE_SIZE};
use pythia_sim::trace::{TraceRecord, TraceSource};

/// The memory access pattern class a workload exhibits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// Unit-stride sweep over the footprint, with a store every
    /// `store_every` loads (0 = no stores).
    Stream {
        /// Insert a store after this many loads (0 disables stores).
        store_every: u32,
    },
    /// Constant stride, in cachelines.
    Stride {
        /// Stride between consecutive accesses, in lines.
        lines: i32,
    },
    /// Visit pages in order; inside each page touch exactly these offsets.
    /// Models `GemsFDTD`-like "first touch plus fixed companions".
    PageVisit {
        /// Offsets (0..64) touched per page, in order.
        offsets: Vec<u8>,
    },
    /// Recurring spatial footprints: each trigger PC has a fixed region
    /// footprint replayed over randomly chosen regions.
    SpatialFootprint {
        /// Footprints (line offsets within a 2 KB region, 0..32), one per
        /// trigger PC.
        patterns: Vec<Vec<u8>>,
        /// Fraction (percent) of region visits that deviate: an extra noise
        /// line inserted at a seeded random position mid-visit — keeps
        /// Bingo's accuracy below 100% and perturbs region learning.
        noise_pct: u8,
    },
    /// Repeating delta sequence applied within pages, advancing to the next
    /// page when the offset overflows.
    DeltaChain {
        /// The repeating delta sequence, in lines.
        deltas: Vec<i8>,
    },
    /// CSR-style graph traversal: sequential reads of an index array mixed
    /// with random neighbour reads across a large footprint.
    IrregularGraph {
        /// Number of vertices (drives footprint).
        vertices: u64,
        /// Average out-degree: neighbour reads per index read.
        avg_degree: u32,
    },
    /// Dependent pointer chase over a random permutation.
    PointerChase,
    /// Server-style traffic: mostly-random lines with a small hot set.
    CloudMix {
        /// Percent of accesses that go to the hot set.
        hot_pct: u8,
    },
    /// Alternate between sub-patterns every `phase_len` memory accesses.
    Phased {
        /// The sub-patterns to cycle through.
        phases: Vec<PatternKind>,
        /// Memory accesses per phase. Every memory record counts —
        /// element-level re-accesses included — and a switch takes effect
        /// at the next fresh cacheline, so a phase boundary can overshoot
        /// by at most `accesses_per_line - 1` records.
        phase_len: u32,
    },
}

/// A complete workload description; `generate()` renders it into a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Workload name (e.g. `"459.GemsFDTD-1320B"`).
    pub name: String,
    /// Pattern class.
    pub kind: PatternKind,
    /// Number of instructions to generate.
    pub instructions: usize,
    /// Percent of instructions that are memory operations (drives MPKI).
    pub mem_pct: u8,
    /// Footprint in 4 KB pages (patterns wrap within it).
    pub footprint_pages: u64,
    /// Percent of instructions that are branches.
    pub branch_pct: u8,
    /// Percent of branches that mispredict.
    pub mispredict_pct: u8,
    /// Consecutive element-sized (8 B) accesses per generated cacheline.
    /// Real programs touch several elements per line, so only a fraction of
    /// loads miss — this keeps the synthetic traces latency-bound (paper
    /// workloads sit at 3–100 LLC MPKI) instead of saturating the DRAM bus.
    pub accesses_per_line: u8,
    /// RNG seed; same spec + same seed = identical trace.
    pub seed: u64,
}

impl TraceSpec {
    /// A convenient default: memory-intensive (every third instruction is a
    /// load), 16 K-page (64 MB) footprint, light branching.
    pub fn new(name: impl Into<String>, kind: PatternKind) -> Self {
        Self {
            name: name.into(),
            kind,
            instructions: 400_000,
            mem_pct: 30,
            footprint_pages: 16 * 1024,
            branch_pct: 10,
            mispredict_pct: 3,
            accesses_per_line: 10,
            seed: 1,
        }
    }

    /// Sets the number of element accesses per line (1 = every load touches
    /// a fresh line; raises memory intensity).
    pub fn with_accesses_per_line(mut self, n: u8) -> Self {
        self.accesses_per_line = n.max(1);
        self
    }

    /// Sets the instruction count.
    pub fn with_instructions(mut self, n: usize) -> Self {
        self.instructions = n;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the footprint.
    pub fn with_footprint_pages(mut self, pages: u64) -> Self {
        self.footprint_pages = pages;
        self
    }

    /// Opens a streaming generator over this spec: records are produced on
    /// demand, one [`TraceStream::next_record`] call at a time, in the
    /// exact sequence [`generate`](TraceSpec::generate) would collect.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero instructions or footprint).
    pub fn stream(&self) -> TraceStream {
        TraceStream::new(self.clone())
    }

    /// Opens a streaming generator boxed as a [`TraceSource`] — the shape
    /// the simulator and runner consume.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero instructions or footprint).
    pub fn source(&self) -> Box<dyn TraceSource> {
        Box::new(self.stream())
    }

    /// Renders the spec into a materialized instruction trace (collects
    /// [`stream`](TraceSpec::stream); prefer the stream on memory-bound
    /// paths).
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero instructions or footprint).
    pub fn generate(&self) -> Vec<TraceRecord> {
        self.stream().collect()
    }
}

/// Element cursor within the current cacheline: the remaining
/// element-sized re-accesses a generated line still owes.
struct LineCursor {
    pc: u64,
    line_base: u64,
    is_write: bool,
    left: u64,
}

/// A streaming trace generator: the [`TraceSource`] implementation that
/// renders a [`TraceSpec`] record-by-record, in O(1) memory, so workload
/// length is bounded by simulation time instead of RAM.
///
/// Determinism: the stream yields exactly the sequence
/// [`TraceSpec::generate`] materializes, and [`reset`](TraceSource::reset)
/// re-seeds the generator so every pass replays identically (pinned by
/// `tests/trace_streaming.rs`).
pub struct TraceStream {
    spec: TraceSpec,
    rng: StdRng,
    state: PatternState,
    /// Distinct base address per trace (so multi-core mixes do not share
    /// data), derived from the seed.
    base: u64,
    pc_counter: u64,
    repeat: u64,
    cursor: Option<LineCursor>,
    emitted: usize,
}

impl std::fmt::Debug for TraceStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStream")
            .field("spec", &self.spec.name)
            .field("emitted", &self.emitted)
            .field("instructions", &self.spec.instructions)
            .finish_non_exhaustive()
    }
}

impl TraceStream {
    fn new(spec: TraceSpec) -> Self {
        assert!(spec.instructions > 0, "empty trace requested");
        assert!(spec.footprint_pages > 0, "zero footprint");
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9);
        let state = PatternState::new(&spec.kind, spec.footprint_pages, &mut rng);
        let base = (spec.seed % 1024 + 1) * 0x1_0000_0000;
        let repeat = spec.accesses_per_line.max(1) as u64;
        Self {
            rng,
            state,
            base,
            pc_counter: 0x400000,
            repeat,
            cursor: None,
            emitted: 0,
            spec,
        }
    }

    /// The spec this stream renders.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// Produces the next record of the current pass, ignoring the
    /// instruction budget (the budgeted entry point is
    /// [`next_record`](TraceSource::next_record)).
    fn step(&mut self) -> TraceRecord {
        let roll = self.rng.gen_range(0..100u32);
        if roll < self.spec.mem_pct as u32 {
            let (pc, addr, is_write, dependent) = match self.cursor.take() {
                Some(c) => {
                    // Element re-accesses are memory records too: charge
                    // them against the pattern's phase budget (`Phased`
                    // counts *memory accesses*, not fresh cachelines)
                    // without advancing any pattern cursor.
                    self.state.note_extra_access();
                    let elem = (self.repeat - c.left) % 8; // 8 elements of 8 B per line
                    let addr = c.line_base + elem * 8;
                    let (pc, w) = (c.pc, c.is_write);
                    if c.left > 1 {
                        self.cursor = Some(LineCursor {
                            left: c.left - 1,
                            ..c
                        });
                    }
                    // Element re-accesses hit in L1 and never depend.
                    (pc, addr, w, false)
                }
                None => {
                    let (pc, offset_bytes, is_write, dependent) = self
                        .state
                        .next_access(self.spec.footprint_pages, &mut self.rng);
                    let line_base = self.base + (offset_bytes & !63);
                    if self.repeat > 1 {
                        self.cursor = Some(LineCursor {
                            pc,
                            line_base,
                            is_write,
                            left: self.repeat - 1,
                        });
                    }
                    (pc, line_base, is_write, dependent)
                }
            };
            let mut rec = if is_write {
                TraceRecord::store(pc, addr)
            } else if dependent {
                TraceRecord::dependent_load(pc, addr)
            } else {
                TraceRecord::load(pc, addr)
            };
            rec.branch = None;
            rec
        } else if roll < (self.spec.mem_pct + self.spec.branch_pct) as u32 {
            let mispred = self.rng.gen_range(0..100u32) < self.spec.mispredict_pct as u32;
            let rec = TraceRecord::branch(self.pc_counter, self.rng.gen_bool(0.6), mispred);
            self.pc_counter = self.pc_counter.wrapping_add(4);
            rec
        } else {
            let rec = TraceRecord::nop(self.pc_counter);
            self.pc_counter = self.pc_counter.wrapping_add(4);
            rec
        }
    }
}

impl Iterator for TraceStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.instructions - self.emitted.min(self.spec.instructions);
        (left, Some(left))
    }
}

impl TraceSource for TraceStream {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.emitted >= self.spec.instructions {
            return None;
        }
        self.emitted += 1;
        Some(self.step())
    }

    fn reset(&mut self) {
        *self = Self::new(self.spec.clone());
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.spec.instructions as u64)
    }
}

/// Mutable cursor over a pattern. Returns `(pc, byte_offset_in_footprint,
/// is_write, dependent_load)` per access.
enum PatternState {
    Stream {
        pos: u64,
        store_every: u32,
        count: u32,
    },
    Stride {
        pos: u64,
        lines: i32,
    },
    PageVisit {
        step: u64,
        offsets: Vec<u8>,
    },
    SpatialFootprint {
        patterns: Vec<Vec<u8>>,
        noise_pct: u8,
        visits: Vec<Vec<(u64, u64)>>,
        rr: usize,
    },
    DeltaChain {
        line: u64,
        idx: usize,
        deltas: Vec<i8>,
    },
    IrregularGraph {
        vertices: u64,
        avg_degree: u32,
        vertex: u64,
        remaining_neighbours: u32,
    },
    PointerChase {
        current: u64,
    },
    CloudMix {
        hot_pct: u8,
        hot_lines: u64,
    },
    Phased {
        states: Vec<PatternState>,
        idx: usize,
        remaining: u32,
        phase_len: u32,
    },
}

impl PatternState {
    fn new(kind: &PatternKind, footprint_pages: u64, rng: &mut StdRng) -> Self {
        match kind {
            PatternKind::Stream { store_every } => Self::Stream {
                pos: 0,
                store_every: *store_every,
                count: 0,
            },
            PatternKind::Stride { lines } => Self::Stride {
                pos: 0,
                lines: *lines,
            },
            PatternKind::PageVisit { offsets } => {
                assert!(!offsets.is_empty(), "PageVisit needs offsets");
                Self::PageVisit {
                    step: 0,
                    offsets: offsets.clone(),
                }
            }
            PatternKind::SpatialFootprint {
                patterns,
                noise_pct,
            } => {
                assert!(!patterns.is_empty(), "SpatialFootprint needs patterns");
                Self::SpatialFootprint {
                    patterns: patterns.clone(),
                    noise_pct: *noise_pct,
                    visits: vec![Vec::new(); 8],
                    rr: 0,
                }
            }
            PatternKind::DeltaChain { deltas } => {
                assert!(!deltas.is_empty(), "DeltaChain needs deltas");
                Self::DeltaChain {
                    line: 0,
                    idx: 0,
                    deltas: deltas.clone(),
                }
            }
            PatternKind::IrregularGraph {
                vertices,
                avg_degree,
            } => Self::IrregularGraph {
                vertices: (*vertices).max(64),
                avg_degree: (*avg_degree).max(1),
                vertex: 0,
                remaining_neighbours: 0,
            },
            PatternKind::PointerChase => Self::PointerChase {
                current: rng.gen_range(0..footprint_pages * LINES_PER_PAGE),
            },
            PatternKind::CloudMix { hot_pct } => Self::CloudMix {
                hot_pct: *hot_pct,
                hot_lines: (footprint_pages * LINES_PER_PAGE / 64).max(64),
            },
            PatternKind::Phased { phases, phase_len } => {
                assert!(!phases.is_empty(), "Phased needs phases");
                assert!(*phase_len > 0, "phase_len must be non-zero");
                Self::Phased {
                    states: phases
                        .iter()
                        .map(|p| PatternState::new(p, footprint_pages, rng))
                        .collect(),
                    idx: 0,
                    remaining: *phase_len,
                    phase_len: *phase_len,
                }
            }
        }
    }

    fn next_access(&mut self, footprint_pages: u64, rng: &mut StdRng) -> (u64, u64, bool, bool) {
        let total_lines = footprint_pages * LINES_PER_PAGE;
        match self {
            Self::Stream {
                pos,
                store_every,
                count,
            } => {
                let line = *pos % total_lines;
                *pos += 1;
                *count += 1;
                let is_write = *store_every > 0 && *count % (*store_every + 1) == 0;
                (0x401000, line * 64, is_write, false)
            }
            Self::Stride { pos, lines } => {
                let line = *pos % total_lines;
                let step = *lines;
                *pos = (*pos as i64 + step as i64).rem_euclid(total_lines as i64) as u64;
                (0x402000, line * 64, false, false)
            }
            Self::PageVisit { step, offsets } => {
                // Offsets behave like concurrent array sweeps: offset i lags
                // `i * PAGE_LAG` pages behind the first-touch sweep, so the
                // companion demands arrive hundreds of instructions after
                // the trigger (giving trigger-keyed prefetchers room to be
                // timely, as in the real GemsFDTD sweeps).
                const PAGE_LAG: u64 = 4;
                let n = offsets.len() as u64;
                loop {
                    let idx = (*step % n) as usize;
                    let round = *step / n;
                    *step += 1;
                    let lag = idx as u64 * PAGE_LAG;
                    if round < lag {
                        continue; // this sweep has not started yet
                    }
                    let p = (round - lag) % footprint_pages;
                    let off = offsets[idx] as u64 % LINES_PER_PAGE;
                    // Distinct PC per sweep (the paper's case study keys its
                    // features on the first-touch PC).
                    let pc = 0x436a81 + (idx as u64) * 0xd44;
                    return (pc, p * PAGE_SIZE + off * 64, false, false);
                }
            }
            Self::SpatialFootprint {
                patterns,
                noise_pct,
                visits,
                rr,
            } => {
                // Several region visits are in flight at once (real spatial
                // workloads process many regions concurrently); each step
                // advances one visit round-robin, so a region's companion
                // accesses trail its trigger by several pattern steps.
                *rr = (*rr + 1) % visits.len();
                let slot = *rr;
                if let Some((pc, byte)) = visits[slot].pop() {
                    return (pc, byte, false, false);
                }
                // Start a new region visit in this slot: pick a pattern
                // (trigger PC) and a random 2 KB region.
                let which = rng.gen_range(0..patterns.len());
                let region_bytes = 2048u64;
                let regions = footprint_pages * PAGE_SIZE / region_bytes;
                let region = rng.gen_range(0..regions);
                let pc = 0x500000 + which as u64 * 0x40;
                let pattern = &patterns[which];
                let mut lines: Vec<u8> = pattern.clone();
                if rng.gen_range(0..100u32) < *noise_pct as u32 {
                    // The deviating line lands at a seeded random point
                    // *inside* the visit (never before the trigger), so it
                    // genuinely perturbs region learning instead of always
                    // trailing the footprint.
                    let noise = rng.gen_range(0..32);
                    let pos = rng.gen_range(1..=lines.len());
                    lines.insert(pos, noise);
                }
                let trigger = lines[0] as u64 % 32;
                for &o in lines[1..].iter().rev() {
                    visits[slot].push((pc, region * region_bytes + (o as u64 % 32) * 64));
                }
                (pc, region * region_bytes + trigger * 64, false, false)
            }
            Self::DeltaChain { line, idx, deltas } => {
                let current = *line % total_lines;
                let d = deltas[*idx];
                *idx = (*idx + 1) % deltas.len();
                // Crossing the page boundary in either direction (negative
                // deltas underflow it) advances to the start of the next
                // page, keeping the chain phase: `idx` runs on so the delta
                // sequence resumes where it left off.
                let next = current as i64 + d as i64;
                let crossed = next < 0 || next as u64 / LINES_PER_PAGE != current / LINES_PER_PAGE;
                *line = if crossed {
                    (current / LINES_PER_PAGE + 1) * LINES_PER_PAGE
                } else {
                    next as u64
                };
                (0x403000 + *idx as u64 * 4, current * 64, false, false)
            }
            Self::IrregularGraph {
                vertices,
                avg_degree,
                vertex,
                remaining_neighbours,
            } => {
                if *remaining_neighbours > 0 {
                    *remaining_neighbours -= 1;
                    // Random neighbour read: vertex data is spread over the
                    // footprint (8 B per vertex -> 8 vertices per line).
                    let v = rng.gen_range(0..*vertices);
                    let byte = (v * 8) % (footprint_pages * PAGE_SIZE);
                    (0x404008, byte, false, false)
                } else {
                    // Sequential index-array read.
                    let v = *vertex % *vertices;
                    *vertex += 1;
                    *remaining_neighbours = rng.gen_range(0..=*avg_degree * 2);
                    let byte = (v * 8) % (footprint_pages * PAGE_SIZE / 2);
                    (0x404000, byte, false, false)
                }
            }
            Self::PointerChase { current } => {
                // Next pointer = hash of current (a fixed pseudo-random
                // permutation), serialized by the dependence flag.
                let line = *current % total_lines;
                *current = current
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
                    % total_lines;
                (0x405000, line * 64, false, true)
            }
            Self::CloudMix { hot_pct, hot_lines } => {
                let hot = rng.gen_range(0..100u32) < *hot_pct as u32;
                let line = if hot {
                    rng.gen_range(0..*hot_lines)
                } else {
                    rng.gen_range(0..total_lines)
                };
                let is_write = rng.gen_range(0..100) < 20;
                (0x406000 + u64::from(hot), line * 64, is_write, false)
            }
            Self::Phased {
                states,
                idx,
                remaining,
                phase_len,
            } => {
                if *remaining == 0 {
                    *idx = (*idx + 1) % states.len();
                    *remaining = *phase_len;
                }
                *remaining -= 1;
                states[*idx].next_access(footprint_pages, rng)
            }
        }
    }

    /// Charges one additional memory record (an element re-access) against
    /// the current phase budget, without advancing any pattern cursor.
    fn note_extra_access(&mut self) {
        if let Self::Phased {
            states,
            idx,
            remaining,
            ..
        } = self
        {
            *remaining = remaining.saturating_sub(1);
            states[*idx].note_extra_access();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::addr;

    fn spec(kind: PatternKind) -> TraceSpec {
        TraceSpec::new("test", kind).with_instructions(20_000)
    }

    #[test]
    fn determinism_same_seed() {
        let s = spec(PatternKind::CloudMix { hot_pct: 30 });
        assert_eq!(s.generate(), s.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec(PatternKind::CloudMix { hot_pct: 30 })
            .with_seed(1)
            .generate();
        let b = spec(PatternKind::CloudMix { hot_pct: 30 })
            .with_seed(2)
            .generate();
        assert_ne!(a, b);
    }

    /// Collapses element-level accesses back to the line sequence.
    fn line_sequence(t: &[pythia_sim::trace::TraceRecord]) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for r in t {
            if let Some(m) = r.mem {
                let l = addr::line_of(m.addr);
                if out.last() != Some(&l) {
                    out.push(l);
                }
            }
        }
        out
    }

    #[test]
    fn stream_is_sequential_lines() {
        let t = spec(PatternKind::Stream { store_every: 0 }).generate();
        let lines = line_sequence(&t);
        for w in lines.windows(2) {
            assert_eq!(w[1], w[0] + 1, "stream must be unit-stride");
        }
    }

    #[test]
    fn element_accesses_share_lines() {
        let t = spec(PatternKind::Stream { store_every: 0 }).generate();
        let mems = t.iter().filter(|r| r.mem.is_some()).count();
        let lines = line_sequence(&t).len();
        // Default 8 accesses per line.
        assert!(mems >= lines * 7, "mems={mems} lines={lines}");
    }

    #[test]
    fn stream_with_stores_interleaves_writes() {
        let t = spec(PatternKind::Stream { store_every: 3 }).generate();
        let writes = t.iter().filter(|r| r.is_store()).count();
        let loads = t.iter().filter(|r| r.is_load()).count();
        assert!(writes > 0);
        assert!(loads > writes * 2);
    }

    #[test]
    fn stride_pattern_has_constant_stride() {
        let t = spec(PatternKind::Stride { lines: 4 }).generate();
        let lines = line_sequence(&t);
        for w in lines.windows(2) {
            let d = w[1] as i64 - w[0] as i64;
            assert!(d == 4 || d < 0, "stride-4 expected, got {d}"); // wrap allowed
        }
    }

    #[test]
    fn page_visit_reproduces_gems_fdtd_case_study() {
        // Offsets {0, 23}: every visited page is touched at exactly offsets
        // 0 and 23 -- the §6.5 pattern -- with the +23 sweep lagging the
        // first-touch sweep so trigger-keyed prefetches can be timely.
        let t = spec(PatternKind::PageVisit {
            offsets: vec![0, 23],
        })
        .generate();
        let accesses: Vec<(u64, u64)> = line_sequence(&t)
            .iter()
            .map(|&l| (addr::page_of_line(l), addr::page_offset_of_line(l)))
            .collect();
        use std::collections::HashMap;
        let mut first_touch_step: HashMap<u64, usize> = HashMap::new();
        for (step, (page, off)) in accesses.iter().enumerate() {
            assert!(*off == 0 || *off == 23, "unexpected offset {off}");
            if *off == 0 {
                first_touch_step.entry(*page).or_insert(step);
            }
        }
        let mut lags = Vec::new();
        for (step, (page, off)) in accesses.iter().enumerate() {
            if *off == 23 {
                if let Some(&trigger) = first_touch_step.get(page) {
                    lags.push(step - trigger);
                }
            }
        }
        assert!(!lags.is_empty());
        let min_lag = *lags.iter().min().unwrap();
        assert!(
            min_lag >= 4,
            "companion sweep should lag the trigger: {min_lag}"
        );
    }

    #[test]
    fn pointer_chase_marks_dependent_loads() {
        let t = spec(PatternKind::PointerChase).generate();
        let deps = t.iter().filter(|r| r.depends_on_prev_load).count();
        let lines = line_sequence(&t).len();
        // Exactly the first access of each chased line is dependent.
        assert_eq!(deps, lines, "one dependent load per chased line");
        assert!(deps > 0);
    }

    #[test]
    fn footprint_respected() {
        // Every pattern kind must stay inside its declared footprint.
        let kinds = vec![
            PatternKind::Stream { store_every: 3 },
            PatternKind::Stride { lines: 7 },
            PatternKind::PageVisit {
                offsets: vec![0, 23, 41],
            },
            PatternKind::SpatialFootprint {
                patterns: vec![vec![0, 3, 7, 12], vec![1, 2, 30]],
                noise_pct: 20,
            },
            PatternKind::DeltaChain {
                deltas: vec![2, -5, 3],
            },
            PatternKind::IrregularGraph {
                vertices: 100_000,
                avg_degree: 8,
            },
            PatternKind::PointerChase,
            PatternKind::CloudMix { hot_pct: 30 },
            PatternKind::Phased {
                phases: vec![
                    PatternKind::Stream { store_every: 0 },
                    PatternKind::PointerChase,
                ],
                phase_len: 100,
            },
        ];
        for kind in kinds {
            let s = spec(kind.clone()).with_footprint_pages(128);
            let t = s.generate();
            let base = (s.seed % 1024 + 1) * 0x1_0000_0000;
            for r in &t {
                if let Some(m) = r.mem {
                    let off = m.addr - base;
                    assert!(
                        off < 128 * PAGE_SIZE,
                        "{kind:?}: access outside footprint: {off:#x}"
                    );
                }
            }
        }
    }

    /// Regression: `Phased` counts *every* memory record against the phase
    /// budget — element re-accesses included. Before the fix, only fresh
    /// cachelines were charged, stretching phases by ~`accesses_per_line`×.
    #[test]
    fn phased_phase_length_counts_every_memory_record() {
        let mut s = spec(PatternKind::Phased {
            phases: vec![
                PatternKind::Stream { store_every: 0 },
                PatternKind::PointerChase,
            ],
            phase_len: 100,
        })
        .with_accesses_per_line(4);
        s.mem_pct = 100;
        s.branch_pct = 0;
        let t = s.generate();
        // With mem_pct=100 every record is a memory access, and 4 accesses
        // per line divides phase_len=100, so boundaries land exactly on
        // record indices 100, 200, ... Dependent loads only occur in the
        // PointerChase phases (odd 100-record windows).
        let dep_indices: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, r)| r.depends_on_prev_load)
            .map(|(i, _)| i)
            .collect();
        assert!(!dep_indices.is_empty(), "pointer-chase phase never ran");
        let first = dep_indices[0];
        assert!(
            (100..104).contains(&first),
            "first chase access at record {first}, expected the phase \
             boundary at 100 (pre-fix it lands near 400)"
        );
        for &i in &dep_indices {
            assert_eq!(
                (i / 100) % 2,
                1,
                "dependent load at record {i} outside a PointerChase phase"
            );
        }
    }

    /// Regression: `DeltaChain` keeps the chain phase across page crossings
    /// (the delta index is never reset), and a crossing in either direction
    /// advances to the start of the next page. Before the fix, every
    /// crossing reset the delta sequence to its first element.
    #[test]
    fn delta_chain_keeps_phase_across_page_crossings() {
        // [2, -5, 3] underflows page 0 immediately (the `next < 0` path);
        // [5, -2, 9] climbs through pages, crossing repeatedly in both
        // directions.
        for deltas in [vec![2i8, -5, 3], vec![5i8, -2, 9]] {
            let mut s = spec(PatternKind::DeltaChain {
                deltas: deltas.clone(),
            })
            .with_accesses_per_line(1)
            .with_footprint_pages(8);
            s.mem_pct = 100;
            s.branch_pct = 0;
            let t = s.generate();
            let base_line = (s.seed % 1024 + 1) * 0x1_0000_0000 / 64;
            let total_lines = 8 * LINES_PER_PAGE;
            let mems: Vec<(u64, u64)> = t
                .iter()
                .filter_map(|r| r.mem.map(|m| (r.pc, addr::line_of(m.addr) - base_line)))
                .collect();
            // The PC encodes the post-increment delta index: it must rotate
            // strictly through the cycle, page crossings notwithstanding.
            for (i, w) in mems.windows(2).enumerate() {
                let idx0 = ((w[0].0 - 0x403000) / 4) as usize;
                let idx1 = ((w[1].0 - 0x403000) / 4) as usize;
                assert_eq!(
                    idx1,
                    (idx0 + 1) % deltas.len(),
                    "delta index reset at access {i} (deltas {deltas:?})"
                );
                // The step either applied the scheduled delta in-page, or
                // advanced to the start of the next page. Record i's PC
                // holds the post-increment index, so the delta applied
                // between records i and i+1 is the one *before* it.
                let applied = deltas[(idx0 + deltas.len() - 1) % deltas.len()];
                let expected = w[0].1 as i64 + applied as i64;
                let line1 = w[1].1 as i64;
                let page0 = w[0].1 / LINES_PER_PAGE;
                // A page advance past the last page wraps to the start of
                // the footprint.
                let next_page_start = ((page0 + 1) * LINES_PER_PAGE % total_lines) as i64;
                assert!(
                    line1 == expected || line1 == next_page_start,
                    "access {i}: line {line1} is neither {expected} \
                     (in-page delta {applied}) nor page advance \
                     {next_page_start}"
                );
            }
            // The trace must actually exercise a page crossing and a
            // negative in-page delta, or this test proves nothing.
            let crossings = mems
                .windows(2)
                .filter(|w| w[1].1 % LINES_PER_PAGE == 0 && w[1].1 != w[0].1 + 1)
                .count();
            let negatives = mems.windows(2).filter(|w| w[1].1 < w[0].1).count();
            assert!(crossings > 0, "no page crossing with deltas {deltas:?}");
            assert!(negatives > 0, "no negative step with deltas {deltas:?}");
        }
    }

    /// Regression: `SpatialFootprint` noise lands at a seeded random point
    /// *inside* the visit. Before the fix it was appended after the
    /// pattern, so every deviating visit ended — never interrupted — with
    /// the noise line.
    #[test]
    fn spatial_footprint_noise_lands_mid_visit() {
        let pattern = vec![0u8, 3, 7, 12];
        let mut s = spec(PatternKind::SpatialFootprint {
            patterns: vec![pattern.clone()],
            noise_pct: 100,
        })
        .with_accesses_per_line(1);
        s.mem_pct = 100;
        s.branch_pct = 0;
        let t = s.generate();
        use std::collections::HashMap;
        let mut by_region: HashMap<u64, Vec<u64>> = HashMap::new();
        for r in &t {
            if let Some(m) = r.mem {
                by_region
                    .entry(m.addr / 2048)
                    .or_default()
                    .push(m.addr % 2048 / 64);
            }
        }
        // With noise_pct=100 every complete visit has 5 accesses (pattern
        // plus one noise line). Count visits whose first 4 offsets already
        // deviate from the pattern — i.e. the noise arrived mid-visit.
        let complete: Vec<&Vec<u64>> = by_region.values().filter(|v| v.len() == 5).collect();
        assert!(complete.len() > 20, "too few complete visits");
        let expected: Vec<u64> = pattern.iter().map(|&o| o as u64).collect();
        let mid_noise = complete.iter().filter(|v| v[..4] != expected[..]).count();
        assert!(
            mid_noise * 4 >= complete.len(),
            "noise never lands mid-visit: {mid_noise}/{}",
            complete.len()
        );
    }

    #[test]
    fn mem_pct_controls_intensity() {
        let mut s = spec(PatternKind::Stream { store_every: 0 });
        s.mem_pct = 50;
        let t = s.generate();
        let mems = t.iter().filter(|r| r.mem.is_some()).count();
        let ratio = mems as f64 / t.len() as f64;
        assert!((0.45..0.55).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn spatial_footprint_replays_patterns() {
        let t = spec(PatternKind::SpatialFootprint {
            patterns: vec![vec![0, 3, 7, 12]],
            noise_pct: 0,
        })
        .generate();
        // Group accesses by 2 KB region: each visited region shows the
        // footprint offsets.
        use std::collections::HashMap;
        let mut by_region: HashMap<u64, Vec<u64>> = HashMap::new();
        for r in &t {
            if let Some(m) = r.mem {
                by_region
                    .entry(m.addr / 2048)
                    .or_default()
                    .push(m.addr % 2048 / 64);
            }
        }
        let full_visits = by_region.values().filter(|v| v.len() >= 4).count();
        assert!(full_visits > 10, "expected replayed footprints");
    }

    #[test]
    fn phased_pattern_switches_behaviour() {
        let t = spec(PatternKind::Phased {
            phases: vec![
                PatternKind::Stream { store_every: 0 },
                PatternKind::PointerChase,
            ],
            phase_len: 100,
        })
        .generate();
        let deps = t.iter().filter(|r| r.depends_on_prev_load).count();
        let seq_loads = t
            .iter()
            .filter(|r| r.is_load() && !r.depends_on_prev_load)
            .count();
        assert!(deps > 0 && seq_loads > 0, "both phases must appear");
    }

    #[test]
    fn branches_and_mispredicts_present() {
        let mut s = spec(PatternKind::Stream { store_every: 0 });
        s.branch_pct = 20;
        s.mispredict_pct = 10;
        let t = s.generate();
        let branches = t.iter().filter(|r| r.branch.is_some()).count();
        let mispredicts = t
            .iter()
            .filter(|r| r.branch.is_some_and(|b| b.mispredicted))
            .count();
        assert!(branches > t.len() / 10);
        assert!(mispredicts > 0);
        assert!(mispredicts < branches / 5);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_instructions_rejected() {
        let mut s = spec(PatternKind::PointerChase);
        s.instructions = 0;
        s.generate();
    }

    #[test]
    fn graph_pattern_mixes_sequential_and_random() {
        let t = spec(PatternKind::IrregularGraph {
            vertices: 100_000,
            avg_degree: 8,
        })
        .generate();
        let pcs: std::collections::HashSet<u64> =
            t.iter().filter(|r| r.mem.is_some()).map(|r| r.pc).collect();
        assert!(pcs.contains(&0x404000), "index-array PC present");
        assert!(pcs.contains(&0x404008), "neighbour PC present");
    }
}
