//! Named workloads grouped into the paper's suites (Table 6) plus the
//! unseen CVP-2-like categories of §6.4, and multi-programmed mix
//! construction (§5.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::generators::{PatternKind, TraceSpec};

/// A workload suite (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2006 (16 workloads in the paper).
    Spec06,
    /// SPEC CPU2017 (12 workloads).
    Spec17,
    /// PARSEC 2.1 (5 workloads).
    Parsec,
    /// Ligra graph processing (13 workloads).
    Ligra,
    /// Cloudsuite (4 workloads).
    Cloudsuite,
    /// The unseen CVP-2-like traces of §6.4 (not used for tuning).
    CvpUnseen,
}

impl Suite {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Suite::Spec06 => "SPEC06",
            Suite::Spec17 => "SPEC17",
            Suite::Parsec => "PARSEC",
            Suite::Ligra => "Ligra",
            Suite::Cloudsuite => "Cloudsuite",
            Suite::CvpUnseen => "CVP-unseen",
        }
    }
}

/// A named workload: a suite plus the spec that generates its trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (paper-style, e.g. `"459.GemsFDTD-1320B"`).
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Generator spec.
    pub spec: TraceSpec,
}

impl Workload {
    fn new(suite: Suite, name: &str, kind: PatternKind, seed: u64) -> Self {
        let spec = TraceSpec::new(name, kind).with_seed(seed);
        Self {
            name: name.to_string(),
            suite,
            spec,
        }
    }

    /// Generates the trace with `instructions` instructions, materialized
    /// as a `Vec` (prefer [`source`](Workload::source) on memory-bound
    /// paths).
    pub fn trace(&self, instructions: usize) -> Vec<pythia_sim::trace::TraceRecord> {
        self.spec.clone().with_instructions(instructions).generate()
    }

    /// Opens a streaming [`TraceSource`](pythia_sim::trace::TraceSource)
    /// generating `instructions` instructions on demand — the same record
    /// sequence as [`trace`](Workload::trace) without materializing it.
    pub fn source(&self, instructions: usize) -> Box<dyn pythia_sim::trace::TraceSource> {
        self.spec.clone().with_instructions(instructions).source()
    }
}

/// Graph workload helper: Ligra kernels differ in frontier density and
/// degree; heavier kernels consume more bandwidth.
fn graph(vertices: u64, degree: u32) -> PatternKind {
    PatternKind::IrregularGraph {
        vertices,
        avg_degree: degree,
    }
}

/// The SPEC CPU2006-like suite (16 workloads).
pub fn spec06() -> Vec<Workload> {
    use PatternKind::*;
    let s = Suite::Spec06;
    vec![
        Workload::new(s, "401.gcc-13B", CloudMix { hot_pct: 60 }, 101),
        Workload::new(s, "429.mcf-184B", PointerChase, 102),
        Workload::new(
            s,
            "436.cactusADM-97B",
            DeltaChain {
                deltas: vec![2, 5, 2, 5],
            },
            103,
        ),
        Workload::new(s, "470.lbm-164B", Stream { store_every: 2 }, 104),
        Workload::new(s, "450.soplex-66B", Stride { lines: 3 }, 105),
        Workload::new(
            s,
            "459.GemsFDTD-765B",
            PageVisit {
                offsets: vec![0, 23],
            },
            106,
        ),
        Workload::new(
            s,
            "459.GemsFDTD-1320B",
            PageVisit {
                offsets: vec![0, 23, 34, 45],
            },
            107,
        ),
        Workload::new(s, "462.libquantum-714B", Stream { store_every: 0 }, 108),
        Workload::new(
            s,
            "482.sphinx3-417B",
            SpatialFootprint {
                patterns: vec![vec![0, 1, 2, 5, 9], vec![3, 4, 8, 15]],
                noise_pct: 10,
            },
            109,
        ),
        Workload::new(s, "433.milc-337B", Stride { lines: 8 }, 110),
        Workload::new(
            s,
            "437.leslie3d-134B",
            DeltaChain {
                deltas: vec![1, 1, 3],
            },
            111,
        ),
        Workload::new(s, "410.bwaves-1963B", Stream { store_every: 4 }, 112),
        Workload::new(s, "471.omnetpp-188B", PointerChase, 113),
        Workload::new(s, "473.astar-153B", PointerChase, 114),
        Workload::new(s, "483.xalancbmk-736B", CloudMix { hot_pct: 40 }, 115),
        Workload::new(
            s,
            "481.wrf-1212B",
            DeltaChain {
                deltas: vec![4, 4, 4, 1],
            },
            116,
        ),
    ]
}

/// The SPEC CPU2017-like suite (12 workloads).
pub fn spec17() -> Vec<Workload> {
    use PatternKind::*;
    let s = Suite::Spec17;
    vec![
        Workload::new(s, "602.gcc_s-734B", CloudMix { hot_pct: 55 }, 201),
        Workload::new(s, "605.mcf_s-665B", PointerChase, 202),
        Workload::new(
            s,
            "628.pop2_s-17B",
            DeltaChain {
                deltas: vec![2, 2, 7],
            },
            203,
        ),
        Workload::new(s, "649.fotonik3d_s-1176B", Stream { store_every: 3 }, 204),
        Workload::new(s, "654.roms_s-842B", Stride { lines: 2 }, 205),
        Workload::new(
            s,
            "627.cam4_s-573B",
            DeltaChain {
                deltas: vec![1, 5, 1, 5],
            },
            206,
        ),
        Workload::new(s, "619.lbm_s-4268B", Stream { store_every: 2 }, 207),
        Workload::new(s, "620.omnetpp_s-874B", PointerChase, 208),
        Workload::new(s, "623.xalancbmk_s-592B", CloudMix { hot_pct: 35 }, 209),
        Workload::new(s, "625.x264_s-39B", Stride { lines: 5 }, 210),
        Workload::new(
            s,
            "607.cactuBSSN_s-2421B",
            DeltaChain {
                deltas: vec![3, 3, 10],
            },
            211,
        ),
        Workload::new(
            s,
            "621.wrf_s-575B",
            DeltaChain {
                deltas: vec![6, 1, 1],
            },
            212,
        ),
    ]
}

/// The PARSEC-2.1-like suite (5 workloads).
pub fn parsec() -> Vec<Workload> {
    use PatternKind::*;
    let s = Suite::Parsec;
    vec![
        Workload::new(
            s,
            "PARSEC-Canneal",
            SpatialFootprint {
                patterns: vec![vec![0, 2, 11], vec![1, 7, 19, 25]],
                noise_pct: 25,
            },
            301,
        ),
        Workload::new(
            s,
            "PARSEC-Facesim",
            SpatialFootprint {
                patterns: vec![
                    (0..14).collect(),
                    vec![16, 17, 18, 19, 20, 21, 22, 23, 24, 25],
                ],
                noise_pct: 5,
            },
            302,
        ),
        Workload::new(s, "PARSEC-Raytrace", PointerChase, 303),
        Workload::new(s, "PARSEC-Streamcluster", Stream { store_every: 5 }, 304),
        Workload::new(
            s,
            "PARSEC-Fluidanimate",
            DeltaChain {
                deltas: vec![1, 2, 1, 2, 8],
            },
            305,
        ),
    ]
}

/// The Ligra-like graph suite (13 workloads). Graph kernels are
/// bandwidth-hungry: large footprints and high neighbour fan-out.
pub fn ligra() -> Vec<Workload> {
    let s = Suite::Ligra;
    let names: [(&str, u64, u32); 13] = [
        ("Ligra-PageRank", 2_000_000, 16),
        ("Ligra-CF", 1_500_000, 12),
        ("Ligra-PageRankDelta", 2_000_000, 14),
        ("Ligra-CC", 2_500_000, 16),
        ("Ligra-BellmanFord", 1_200_000, 10),
        ("Ligra-Triangle", 800_000, 24),
        ("Ligra-Radii", 1_000_000, 12),
        ("Ligra-MIS", 900_000, 10),
        ("Ligra-BFS-Bitvector", 1_600_000, 8),
        ("Ligra-BFSCC", 1_800_000, 10),
        ("Ligra-BFS", 1_600_000, 6),
        ("Ligra-BC", 1_400_000, 12),
        ("Ligra-KCore", 1_100_000, 18),
    ];
    names
        .iter()
        .enumerate()
        .map(|(i, (name, v, d))| {
            let mut w = Workload::new(s, name, graph(*v, *d), 400 + i as u64);
            // Graph kernels are memory-bound: raise intensity and footprint.
            w.spec.mem_pct = 45;
            w.spec.footprint_pages = 64 * 1024;
            w
        })
        .collect()
}

/// The Cloudsuite-like suite (4 workloads).
pub fn cloudsuite() -> Vec<Workload> {
    use PatternKind::*;
    let s = Suite::Cloudsuite;
    vec![
        Workload::new(s, "cassandra", CloudMix { hot_pct: 30 }, 501),
        Workload::new(s, "cloud9", CloudMix { hot_pct: 20 }, 502),
        Workload::new(s, "nutch", CloudMix { hot_pct: 45 }, 503),
        Workload::new(s, "classification", CloudMix { hot_pct: 15 }, 504),
    ]
}

/// The unseen CVP-2-like categories of §6.4. Seeds and parameter points are
/// disjoint from the tuning suites.
pub fn cvp_unseen() -> Vec<Workload> {
    use PatternKind::*;
    let s = Suite::CvpUnseen;
    vec![
        Workload::new(s, "crypto-1", Stride { lines: 7 }, 601),
        Workload::new(s, "crypto-2", DeltaChain { deltas: vec![9, 2] }, 602),
        Workload::new(s, "int-1", CloudMix { hot_pct: 50 }, 603),
        Workload::new(s, "int-2", PointerChase, 604),
        Workload::new(s, "fp-1", Stream { store_every: 3 }, 605),
        Workload::new(
            s,
            "fp-2",
            DeltaChain {
                deltas: vec![2, 2, 2, 13],
            },
            606,
        ),
        Workload::new(s, "server-1", CloudMix { hot_pct: 25 }, 607),
        Workload::new(
            s,
            "server-2",
            Phased {
                phases: vec![CloudMix { hot_pct: 30 }, Stream { store_every: 4 }],
                phase_len: 5_000,
            },
            608,
        ),
    ]
}

/// Returns the workloads of one suite.
pub fn suite(which: Suite) -> Vec<Workload> {
    match which {
        Suite::Spec06 => spec06(),
        Suite::Spec17 => spec17(),
        Suite::Parsec => parsec(),
        Suite::Ligra => ligra(),
        Suite::Cloudsuite => cloudsuite(),
        Suite::CvpUnseen => cvp_unseen(),
    }
}

/// Every tuning suite (the 50 workloads of Table 6; excludes the unseen
/// set).
pub fn all_suites() -> Vec<Workload> {
    let mut v = spec06();
    v.extend(spec17());
    v.extend(parsec());
    v.extend(ligra());
    v.extend(cloudsuite());
    v
}

/// Builds `n`-core multi-programmed mixes per §5.1: `homogeneous` runs `n`
/// copies of each workload; heterogeneous mixes draw `n` random distinct
/// workloads. `count` is the number of heterogeneous mixes.
pub fn mixes(n: usize, count: usize, seed: u64) -> Vec<(String, Vec<Workload>)> {
    let pool = all_suites();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    // Representative homogeneous mixes: one per suite archetype.
    for name in [
        "462.libquantum-714B",
        "429.mcf-184B",
        "Ligra-PageRank",
        "PARSEC-Facesim",
    ] {
        if let Some(w) = pool.iter().find(|w| w.name == name) {
            let copies: Vec<Workload> = (0..n)
                .map(|i| {
                    let mut c = w.clone();
                    c.spec.seed += i as u64 * 7919;
                    c
                })
                .collect();
            out.push((format!("homo-{name}"), copies));
        }
    }
    // Heterogeneous mixes.
    for m in 0..count {
        let mut chosen = Vec::new();
        while chosen.len() < n {
            let w = &pool[rng.gen_range(0..pool.len())];
            chosen.push(w.clone());
        }
        out.push((format!("mix-{m}"), chosen));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_workload_counts() {
        assert_eq!(spec06().len(), 16);
        assert_eq!(spec17().len(), 12);
        assert_eq!(parsec().len(), 5);
        assert_eq!(ligra().len(), 13);
        assert_eq!(cloudsuite().len(), 4);
        assert_eq!(all_suites().len(), 50, "Table 6 lists 50 workloads");
    }

    #[test]
    fn workload_names_unique() {
        let all = all_suites();
        let names: std::collections::HashSet<_> = all.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn seeds_unique_across_workloads() {
        let all = all_suites();
        let seeds: std::collections::HashSet<_> = all.iter().map(|w| w.spec.seed).collect();
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn traces_generate_and_are_memory_intensive() {
        for w in [&spec06()[1], &ligra()[0], &cloudsuite()[0]] {
            let t = w.trace(10_000);
            assert_eq!(t.len(), 10_000);
            let mems = t.iter().filter(|r| r.mem.is_some()).count();
            assert!(mems * 5 > t.len(), "{}: too few memory ops", w.name);
        }
    }

    #[test]
    fn mixes_have_n_traces_each() {
        let ms = mixes(4, 3, 42);
        assert!(!ms.is_empty());
        for (name, ws) in &ms {
            assert_eq!(ws.len(), 4, "{name}");
        }
        // Heterogeneous mixes requested: 3, plus 4 homogeneous.
        assert_eq!(ms.len(), 7);
    }

    #[test]
    fn mixes_deterministic_by_seed() {
        let a: Vec<String> = mixes(2, 5, 7).into_iter().map(|(n, _)| n).collect();
        let b: Vec<String> = mixes(2, 5, 7).into_iter().map(|(n, _)| n).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unseen_suite_disjoint_from_tuning_suites() {
        let tuning: std::collections::HashSet<_> =
            all_suites().iter().map(|w| w.spec.seed).collect();
        for w in cvp_unseen() {
            assert!(
                !tuning.contains(&w.spec.seed),
                "{} reuses a tuning seed",
                w.name
            );
        }
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Spec06.label(), "SPEC06");
        assert_eq!(Suite::CvpUnseen.label(), "CVP-unseen");
    }
}
