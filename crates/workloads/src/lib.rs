//! # pythia-workloads
//!
//! Deterministic synthetic workload-trace generators for the Pythia
//! reproduction.
//!
//! The paper evaluates on Pin/championship traces of SPEC CPU2006/2017,
//! PARSEC 2.1, Ligra and Cloudsuite (Table 6) — traces we cannot
//! redistribute or regenerate. Following the substitution policy in
//! DESIGN.md, this crate generates traces that exercise the *pattern
//! classes* those suites exhibit, because prefetcher behaviour (who covers
//! what, who overpredicts) is a function of the access patterns:
//!
//! * [`PatternKind::Stream`] — `libquantum`/`bwaves`-like unit-stride sweeps
//! * [`PatternKind::Stride`] — constant multi-line strides (`milc`-like)
//! * [`PatternKind::PageVisit`] — a PC touches a fixed set of offsets per
//!   page (the `GemsFDTD` {+23}/{+11} case study of §6.5)
//! * [`PatternKind::SpatialFootprint`] — recurring region footprints keyed
//!   by trigger PC (SMS/Bingo-friendly; `sphinx3`, `canneal`, `facesim`)
//! * [`PatternKind::DeltaChain`] — repeating delta sequences inside pages
//!   (SPP-friendly)
//! * [`PatternKind::IrregularGraph`] — frontier-driven CSR traversal with
//!   sequential index reads and random neighbour reads (Ligra-like,
//!   bandwidth-hungry)
//! * [`PatternKind::PointerChase`] — dependent-load chains (`mcf`,
//!   `omnetpp`)
//! * [`PatternKind::CloudMix`] — large-footprint, low-locality server
//!   traffic (Cloudsuite)
//! * [`PatternKind::Phased`] — phase-alternating combinations to exercise
//!   online adaptation
//!
//! [`suites`] names ~50 workloads across the five suites (Table 6) plus the
//! unseen CVP-2-like categories of §6.4, and [`mixes`] builds the
//! homogeneous/heterogeneous multi-programmed mixes of §5.1. [`profiles`]
//! packages the generators into the named `expected` / `stress` /
//! `adversarial` robustness profiles with derived per-trace seeds and
//! streamed JSON summary stats.
//!
//! Traces stream: [`TraceSpec::stream`] / [`Workload::source`] yield
//! records on demand as `pythia_sim::trace::TraceSource`s, so simulated
//! workload length is bounded by time, not RAM; `generate()`/`trace()`
//! are the collecting conveniences.

pub mod generators;
pub mod profiles;
pub mod suites;

pub use generators::{PatternKind, TraceSpec, TraceStream};
pub use profiles::{derive_seed, profile_stats, trace_stats, Profile, CAMPAIGN_SEED};
pub use suites::{all_suites, mixes, suite, Suite, Workload};
