//! Robustness trace profiles: parameterized synthetic access-stream
//! bundles that deliberately stress the prefetchers beyond the paper's
//! pattern mix.
//!
//! Three profiles, in rising order of hostility:
//!
//! * [`Profile::Expected`] — paper-like single-pattern workloads, one per
//!   major pattern class. The reference point robustness deltas are
//!   measured against.
//! * [`Profile::Stress`] — phase changes mid-trace, fine-grain
//!   multi-program-style interference, and reward-starving sparse reuse.
//! * [`Profile::Adversarial`] — prefetch-hostile pointer-chase
//!   interleaves, footprint thrash, spatial-noise poisoning, and
//!   mispredict storms.
//!
//! Every trace seed is derived from a base seed and a textual label via
//! [`derive_seed`], so `derive_seed(seed, "adversarial")` names the same
//! stream forever while distinct profiles draw uncorrelated streams.
//! [`trace_stats`] summarizes any workload (access counts, distinct-line
//! coverage ratio, a windowed phase map) through the `pythia-stats` JSON
//! layer, and [`profile_stats`] bundles a whole profile.

use std::collections::HashSet;

use pythia_sim::addr::LINES_PER_PAGE;
use pythia_stats::json::Json;

use crate::generators::{PatternKind, TraceSpec};
use crate::suites::{Suite, Workload};

/// Base seed the `robust01`–`robust03` campaigns derive their per-profile
/// seeds from. Fixed so campaign results are reproducible byte-for-byte.
pub const CAMPAIGN_SEED: u64 = 0xb0b;

/// Number of windows in a [`trace_stats`] phase map.
pub const PHASE_MAP_WINDOWS: usize = 16;

/// A robustness profile: a named bundle of trace specs with a shared
/// hostility level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Paper-like single-pattern workloads (the reference point).
    Expected,
    /// Phase changes, interference, reward-starving sparse reuse.
    Stress,
    /// Prefetch-hostile chases, footprint thrash, mispredict storms.
    Adversarial,
}

impl Profile {
    /// All profiles, in reference-first order (campaigns score the other
    /// two against `Expected`).
    pub fn all() -> [Profile; 3] {
        [Profile::Expected, Profile::Stress, Profile::Adversarial]
    }

    /// The profile's canonical name (also its seed-derivation label and
    /// sweep group).
    pub fn label(&self) -> &'static str {
        match self {
            Profile::Expected => "expected",
            Profile::Stress => "stress",
            Profile::Adversarial => "adversarial",
        }
    }

    /// Parses a profile name as typed on the CLI.
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "expected" => Some(Profile::Expected),
            "stress" => Some(Profile::Stress),
            "adversarial" => Some(Profile::Adversarial),
            _ => None,
        }
    }

    /// One-line description for help text and reports.
    pub fn description(&self) -> &'static str {
        match self {
            Profile::Expected => "paper-like single-pattern mixes (reference point)",
            Profile::Stress => "phase changes, interference, sparse reuse",
            Profile::Adversarial => "pointer-chase interleaves, thrash, mispredict storms",
        }
    }

    /// The profile's workloads, with per-trace seeds derived from
    /// `derive_seed(derive_seed(seed, label), trace_name)` so each trace
    /// draws its own stable stream.
    pub fn workloads(&self, seed: u64) -> Vec<Workload> {
        let profile_seed = derive_seed(seed, self.label());
        let unit = |name: &str, kind: PatternKind| -> Workload {
            let full = format!("{}-{}", &self.label()[..3], name);
            let spec =
                TraceSpec::new(full.clone(), kind).with_seed(derive_seed(profile_seed, name));
            Workload {
                name: full,
                suite: Suite::CvpUnseen,
                spec,
            }
        };
        use PatternKind::*;
        match self {
            Profile::Expected => vec![
                unit("stream", Stream { store_every: 3 }),
                unit("stride", Stride { lines: 4 }),
                unit(
                    "spatial",
                    SpatialFootprint {
                        patterns: vec![vec![0, 1, 2, 5, 9], vec![3, 4, 8, 15]],
                        noise_pct: 10,
                    },
                ),
                unit(
                    "delta",
                    DeltaChain {
                        deltas: vec![2, 5, 2, 5],
                    },
                ),
                {
                    let mut w = unit(
                        "graph",
                        IrregularGraph {
                            vertices: 1_000_000,
                            avg_degree: 12,
                        },
                    );
                    w.spec.mem_pct = 45;
                    w.spec.footprint_pages = 64 * 1024;
                    w
                },
                unit("server", CloudMix { hot_pct: 30 }),
            ],
            Profile::Stress => vec![
                // Coarse phase changes: the prefetcher must unlearn a whole
                // pattern class mid-trace.
                unit(
                    "phase-flip",
                    Phased {
                        phases: vec![
                            Stream { store_every: 0 },
                            PointerChase,
                            Stride { lines: -3 },
                        ],
                        phase_len: 2_000,
                    },
                ),
                // Rapid churn between a learnable chain and server noise.
                unit(
                    "phase-churn",
                    Phased {
                        phases: vec![
                            DeltaChain {
                                deltas: vec![1, 1, 3],
                            },
                            CloudMix { hot_pct: 10 },
                        ],
                        phase_len: 500,
                    },
                ),
                // Fine-grain interleave emulating multi-program
                // interference on one core: three unrelated streams
                // alternate every 64 accesses.
                unit(
                    "interference",
                    Phased {
                        phases: vec![
                            Stream { store_every: 2 },
                            CloudMix { hot_pct: 20 },
                            Stride { lines: 7 },
                        ],
                        phase_len: 64,
                    },
                ),
                // Reward-starving sparse reuse: a huge footprint with no
                // hot set, so prefetch rewards almost never arrive.
                {
                    let mut w = unit("sparse-reuse", CloudMix { hot_pct: 0 });
                    w.spec.footprint_pages = 128 * 1024;
                    w.spec.accesses_per_line = 1;
                    w
                },
                // A long-period delta drift that overflows pages often.
                unit(
                    "drift",
                    DeltaChain {
                        deltas: vec![1, 1, 1, 29],
                    },
                ),
                // Many lagging companion sweeps per page: stresses
                // prefetch timeliness.
                unit(
                    "companion-storm",
                    PageVisit {
                        offsets: vec![0, 9, 17, 25, 33, 41, 49, 57],
                    },
                ),
            ],
            Profile::Adversarial => vec![
                // Pure dependent chains: nothing is predictable from the
                // address stream.
                {
                    let mut w = unit("chase", PointerChase);
                    w.spec.accesses_per_line = 1;
                    w.spec.mem_pct = 40;
                    w
                },
                // Prefetch-hostile chase interleave: the streamable phase
                // baits aggressive degrees right before the chase punishes
                // them.
                unit(
                    "chase-interleave",
                    Phased {
                        phases: vec![PointerChase, Stream { store_every: 0 }],
                        phase_len: 128,
                    },
                ),
                // Footprint thrash: uniform traffic over 1 GB, every line
                // touched once.
                {
                    let mut w = unit("thrash", CloudMix { hot_pct: 0 });
                    w.spec.footprint_pages = 256 * 1024;
                    w.spec.accesses_per_line = 1;
                    w.spec.mem_pct = 60;
                    w
                },
                // Mispredict storm: branch-heavy server traffic with 40%
                // mispredicts.
                {
                    let mut w = unit("mispredict-storm", CloudMix { hot_pct: 15 });
                    w.spec.branch_pct = 30;
                    w.spec.mispredict_pct = 40;
                    w
                },
                // Spatial poisoning: 90% of region visits deviate, so
                // footprint learners never converge.
                unit(
                    "spatial-poison",
                    SpatialFootprint {
                        patterns: vec![vec![0, 3, 7, 12], vec![2, 9, 21]],
                        noise_pct: 90,
                    },
                ),
                // Conflicting delta dialects swapped every 200 accesses:
                // delta predictors keep relearning the wrong table.
                unit(
                    "delta-flip",
                    Phased {
                        phases: vec![
                            DeltaChain { deltas: vec![2, 5] },
                            DeltaChain {
                                deltas: vec![-3, 7],
                            },
                            DeltaChain {
                                deltas: vec![1, -6, 11],
                            },
                        ],
                        phase_len: 200,
                    },
                ),
            ],
        }
    }
}

/// Derives a child seed from a base seed and a textual label (FNV-1a over
/// the label, folded into the base): same `(seed, label)` names the same
/// stream forever, distinct labels draw uncorrelated streams.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x0100_0000_01b3);
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Summarizes one workload's trace: access counts, distinct-line coverage
/// ratio against the declared footprint, and a [`PHASE_MAP_WINDOWS`]-window
/// phase map (per-window access counts, distinct lines, and lines never
/// seen before the window — phase changes show up as `new_lines` spikes).
pub fn trace_stats(w: &Workload, instructions: usize) -> Json {
    let spec = w.spec.clone().with_instructions(instructions.max(1));
    let window_len = (spec.instructions / PHASE_MAP_WINDOWS).max(1);
    let mut seen: HashSet<u64> = HashSet::new();
    let (mut mem, mut loads, mut stores, mut branches, mut mispredicts, mut dependents) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut windows: Vec<Json> = Vec::new();
    let (mut w_start, mut w_mem, mut w_new) = (0usize, 0u64, 0u64);
    let mut w_lines: HashSet<u64> = HashSet::new();
    let flush = |start: usize, mem: u64, new: u64, lines: &mut HashSet<u64>| -> Json {
        let j = Json::obj()
            .set("start_record", start)
            .set("accesses", mem)
            .set("distinct_lines", lines.len())
            .set("new_lines", new);
        lines.clear();
        j
    };
    for (i, r) in spec.stream().enumerate() {
        if i > w_start && i % window_len == 0 && windows.len() < PHASE_MAP_WINDOWS {
            windows.push(flush(w_start, w_mem, w_new, &mut w_lines));
            (w_start, w_mem, w_new) = (i, 0, 0);
        }
        if let Some(m) = r.mem {
            mem += 1;
            w_mem += 1;
            let line = m.addr / 64;
            if seen.insert(line) {
                w_new += 1;
            }
            w_lines.insert(line);
            if r.is_store() {
                stores += 1;
            } else {
                loads += 1;
            }
            if r.depends_on_prev_load {
                dependents += 1;
            }
        }
        if let Some(b) = r.branch {
            branches += 1;
            if b.mispredicted {
                mispredicts += 1;
            }
        }
    }
    windows.push(flush(w_start, w_mem, w_new, &mut w_lines));
    let footprint_lines = spec.footprint_pages * LINES_PER_PAGE;
    Json::obj()
        .set("name", w.name.as_str())
        .set("suite", w.suite.label())
        .set("seed", spec.seed)
        .set("instructions", spec.instructions)
        .set("mem_accesses", mem)
        .set("loads", loads)
        .set("stores", stores)
        .set("branches", branches)
        .set("mispredicts", mispredicts)
        .set("dependent_loads", dependents)
        .set("distinct_lines", seen.len())
        .set("footprint_lines", footprint_lines)
        .set("coverage_ratio", seen.len() as f64 / footprint_lines as f64)
        .set("phase_map", Json::Arr(windows))
}

/// Summarizes a whole profile: the profile envelope plus [`trace_stats`]
/// for each of its workloads.
pub fn profile_stats(p: Profile, seed: u64, instructions: usize) -> Json {
    let traces: Vec<Json> = p
        .workloads(seed)
        .iter()
        .map(|w| trace_stats(w, instructions))
        .collect();
    Json::obj()
        .set("profile", p.label())
        .set("description", p.description())
        .set("base_seed", seed)
        .set("derived_seed", derive_seed(seed, p.label()))
        .set("traces", Json::Arr(traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::addr::PAGE_SIZE;

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(1, "adversarial"), derive_seed(1, "adversarial"));
        assert_ne!(derive_seed(1, "adversarial"), derive_seed(1, "expected"));
        assert_ne!(derive_seed(1, "adversarial"), derive_seed(2, "adversarial"));
    }

    #[test]
    fn profiles_deterministic_by_seed() {
        for p in Profile::all() {
            assert_eq!(p.workloads(7), p.workloads(7), "{}", p.label());
            assert_ne!(p.workloads(7), p.workloads(8), "{}", p.label());
        }
    }

    #[test]
    fn profile_names_and_seeds_unique() {
        let all: Vec<Workload> = Profile::all()
            .iter()
            .flat_map(|p| p.workloads(CAMPAIGN_SEED))
            .collect();
        let names: HashSet<_> = all.iter().map(|w| &w.name).collect();
        let seeds: HashSet<_> = all.iter().map(|w| w.spec.seed).collect();
        assert_eq!(names.len(), all.len());
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn profiles_respect_declared_footprints() {
        for p in Profile::all() {
            for w in p.workloads(CAMPAIGN_SEED) {
                let spec = w.spec.clone().with_instructions(20_000);
                let base = (spec.seed % 1024 + 1) * 0x1_0000_0000;
                let bound = spec.footprint_pages * PAGE_SIZE;
                for r in spec.generate() {
                    if let Some(m) = r.mem {
                        let off = m.addr - base;
                        assert!(off < bound, "{}: access outside footprint", w.name);
                    }
                }
            }
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for p in Profile::all() {
            assert_eq!(Profile::parse(p.label()), Some(p));
        }
        assert_eq!(Profile::parse("bogus"), None);
    }

    #[test]
    fn trace_stats_summarizes_coverage_and_phases() {
        let w = &Profile::Stress.workloads(CAMPAIGN_SEED)[0];
        let j = trace_stats(w, 20_000);
        let ratio = j.get("coverage_ratio").and_then(Json::as_f64).unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio={ratio}");
        let phases = j.get("phase_map").and_then(Json::as_arr).unwrap();
        assert_eq!(phases.len(), PHASE_MAP_WINDOWS);
        let total: u64 = phases
            .iter()
            .map(|p| p.get("accesses").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(
            total,
            j.get("mem_accesses").and_then(Json::as_u64).unwrap(),
            "phase map must partition the access stream"
        );
        // The emitted JSON must survive the in-repo parser (CI pipes it
        // through a JSON tool).
        let parsed = pythia_stats::json::parse(&j.render_pretty()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn profile_stats_bundles_all_traces() {
        let j = profile_stats(Profile::Adversarial, CAMPAIGN_SEED, 5_000);
        let traces = j.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(
            traces.len(),
            Profile::Adversarial.workloads(CAMPAIGN_SEED).len()
        );
        assert_eq!(j.get("profile").and_then(Json::as_str), Some("adversarial"));
    }
}
