//! Subcommand implementations for `pythia-cli`.

use pythia::runner::{
    build_prefetcher, run_sources, run_workload, run_workload_telemetry, RunSpec,
};
use pythia_core::hw_model;
use pythia_core::PythiaConfig;
use pythia_obs::logger::Level;
use pythia_sim::config::SystemConfig;
use pythia_sim::stats::{SimReport, Throughput};
use pythia_sim::system::WindowRow;
use pythia_sim::trace::{trace_file_info, FileTraceSource, TraceSource, TraceWriter};
use pythia_stats::json::sim_report_json;
use pythia_stats::metrics::compare as compare_metrics;
use pythia_stats::report::Table;
use pythia_workloads::profiles::{profile_stats, trace_stats, Profile, CAMPAIGN_SEED};
use pythia_workloads::suites::{all_suites, cvp_unseen};
use pythia_workloads::Workload;

use crate::args::ParsedArgs;

/// Help text shown by `pythia-cli` with no arguments.
pub const HELP: &str = "\
pythia-cli — Pythia reproduction driver

USAGE:
  pythia-cli list                               list workloads and prefetchers
  pythia-cli run <workload> <prefetcher>        simulate one configuration
      [--warmup N] [--measure N] [--mtps N] [--llc-kb N] [--report-json FILE]
      [--telemetry-json FILE]                   per-window telemetry JSONL
      [--telemetry-window N]                    (report stays byte-identical)
  pythia-cli compare <workload>                 race prefetchers on a workload
      [--prefetchers spp,bingo,mlop,pythia] [--warmup N] [--measure N]
  pythia-cli sweep <figure>                     run a figure/table campaign in
      [--threads N] [--format md|json|csv]      parallel and emit its results
      [--out FILE] [--cache-dir DIR]            (`--list` shows figure ids;
                                                the cache skips repeat runs)
  pythia-cli sweep --workloads a,b,c            ad-hoc sweep over named
      [--prefetchers x,y] [--baseline none]     workloads instead of a figure
      [--warmup N] [--measure N] [--mtps N] [--llc-kb N]
  pythia-cli bench                              run the hot-path microbenchmarks
      [--filter SUBSTR] [--reps N] [--out FILE] (BENCH_micro.json) and optionally
      [--baseline FILE] [--list]                gate against a baseline report
      [--max-regress PCT[,name=PCT,...]]        (PYTHIA_BENCH_SCALE scales work)
      [--sections]                              per-phase span-timer breakdown
                                                of the agent hot path instead
  pythia-cli bench --compare <old> <new>        print the per-benchmark delta
                                                table between two saved reports
                                                (warns on cross-host compares)
  pythia-cli trace record <workload> <file>     stream a workload to a binary
      [--instructions N]                        trace file (O(1) memory)
  pythia-cli trace replay <file> <prefetcher>   simulate straight from a trace
      [--warmup N] [--measure N] [--mtps N]     file; byte-identical to the
      [--llc-kb N] [--report-json FILE]         equivalent `run`
  pythia-cli trace info <file> [--json]         print trace header and stats
  pythia-cli trace gen <profile>                generate a robustness profile
      [--seed N] [--instructions N]             (expected|stress|adversarial):
      [--out DIR] [--stats-json [FILE]]         summary table, binary traces,
                                                or coverage/phase-map stats
                                                (sweep robust01..03 scores
                                                prefetchers across profiles)
  pythia-cli storage                            print storage/overhead tables
  pythia-cli serve                              run the campaign service: job
      [--addr 127.0.0.1:7071] [--workers N]     scheduling, in-flight dedup, a
      [--threads N] [--queue N]                 content-addressed result cache,
      [--cache-dir DIR] [--cache-max-bytes N]   a crash-safe job journal and
      [--max-conns N] [--journal FILE]          GET /metrics behind an HTTP API
      [--log-level error|warn|info|debug]       (/metrics?format=prom for
                                                Prometheus text exposition;
                                                logs are JSONL on stderr)
  pythia-cli submit <figure> --addr HOST:PORT   submit a campaign to a running
      [--format md|json|csv] [--out FILE]       service, poll to completion
      [--poll-ms N] [--timeout-s N]             (printing cell progress) and
      [--tenant KEY] [--priority N]             fetch the rendered result;
                                                tenants share the pool fairly,
                                                priority weights the quantum
";

fn find_workload(name: &str) -> Result<Workload, String> {
    let mut pool = all_suites();
    pool.extend(cvp_unseen());
    pool.iter()
        .find(|w| w.name == name)
        .cloned()
        .ok_or_else(|| format!("unknown workload {name:?}; see `pythia-cli list`"))
}

fn spec_from(args: &ParsedArgs) -> Result<RunSpec, String> {
    let warmup = args.opt_num("warmup", 100_000u64)?;
    let measure = args.opt_num("measure", 400_000u64)?;
    let mut system = SystemConfig::single_core();
    if let Some(mtps) = args.opt("mtps") {
        system.dram.mtps = mtps
            .parse()
            .map_err(|_| format!("--mtps: bad value {mtps:?}"))?;
    }
    if let Some(kb) = args.opt("llc-kb") {
        let kb: u64 = kb
            .parse()
            .map_err(|_| format!("--llc-kb: bad value {kb:?}"))?;
        system.llc.size_bytes = kb * 1024;
    }
    Ok(RunSpec::single_core()
        .with_system(system)
        .with_budget(warmup, measure))
}

fn pattern_label(kind: &pythia_workloads::PatternKind) -> &'static str {
    use pythia_workloads::PatternKind;
    match kind {
        PatternKind::Stream { .. } => "stream",
        PatternKind::Stride { .. } => "stride",
        PatternKind::PageVisit { .. } => "page-visit",
        PatternKind::SpatialFootprint { .. } => "spatial-footprint",
        PatternKind::DeltaChain { .. } => "delta-chain",
        PatternKind::IrregularGraph { .. } => "irregular-graph",
        PatternKind::PointerChase => "pointer-chase",
        PatternKind::CloudMix { .. } => "cloud-mix",
        PatternKind::Phased { .. } => "phased",
    }
}

/// `pythia-cli list [--names]`
pub fn list(args: &ParsedArgs) -> Result<(), String> {
    let mut pool = all_suites();
    pool.extend(cvp_unseen());
    if args.flag("names") {
        for w in &pool {
            println!("{}", w.name);
        }
        return Ok(());
    }
    println!("# Workloads (Table 6 suites + unseen)\n");
    let mut t = Table::new(&["workload", "suite", "pattern"]);
    for w in &pool {
        t.row(&[
            w.name.clone(),
            w.suite.label().to_string(),
            pattern_label(&w.spec.kind).to_string(),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("# Prefetchers\n");
    let mut names: Vec<&str> = pythia_prefetchers::available().to_vec();
    names.extend(pythia::runner::RUNNER_ONLY);
    for n in names {
        println!("  {n}");
    }
    Ok(())
}

/// Prints the shared `run` / `trace replay` result block: the Appendix
/// A.6 metrics of `report` vs `baseline`, plus the wall-clock throughput
/// of the pair of simulations.
fn print_run_summary(
    subject: &str,
    prefetcher: &str,
    baseline: &SimReport,
    report: &SimReport,
    throughput: Throughput,
) {
    let m = compare_metrics(baseline, report);
    println!("workload        : {subject}");
    println!("prefetcher      : {prefetcher}");
    println!("baseline IPC    : {:.4}", baseline.geomean_ipc());
    println!("IPC             : {:.4}", report.geomean_ipc());
    println!("speedup         : {:.4}x", m.speedup);
    println!("coverage        : {:.1}%", m.coverage * 100.0);
    println!("overprediction  : {:.1}%", m.overprediction * 100.0);
    println!("accuracy        : {:.1}%", m.accuracy * 100.0);
    println!("baseline MPKI   : {:.1}", m.baseline_mpki);
    println!("prefetches      : {}", report.prefetches_issued());
    println!(
        "throughput      : {:.2} Minst/s ({:.2} s wall)",
        throughput.minst_per_sec(),
        throughput.wall_seconds
    );
}

/// Runs the baseline + measured simulation pair under one wall-clock
/// measurement: two runs of `warmup+measure` instructions each
/// (single-core), however the sources are built.
fn timed_pair(
    spec: &RunSpec,
    baseline: impl FnOnce() -> SimReport,
    measured: impl FnOnce() -> SimReport,
) -> (SimReport, SimReport, Throughput) {
    let started = std::time::Instant::now();
    let baseline = baseline();
    let report = measured();
    let throughput = Throughput::new(
        2 * (spec.warmup + spec.measure),
        started.elapsed().as_secs_f64(),
    );
    (baseline, report, throughput)
}

/// Writes an output artifact, creating missing parent directories first —
/// `--out results/fig09/BENCH.json` should not fail with a raw io error
/// just because `results/fig09/` does not exist yet.
fn write_artifact(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

/// Honours `--report-json FILE`: writes the deterministic [`SimReport`]
/// JSON of the measured run (the artifact the CI record→replay smoke
/// compares byte-for-byte).
fn maybe_write_report_json(args: &ParsedArgs, report: &SimReport) -> Result<(), String> {
    if let Some(path) = args.opt("report-json") {
        write_artifact(path, &sim_report_json(report).render_pretty())?;
        println!("wrote report JSON to {path}");
    }
    Ok(())
}

/// Renders per-window telemetry rows as JSONL: one object per closed
/// window per core, in core-major order.
fn telemetry_jsonl(windows: &[Vec<WindowRow>]) -> String {
    let mut out = String::new();
    for (core, rows) in windows.iter().enumerate() {
        for row in rows {
            let mut obj = pythia_stats::json::Json::obj()
                .set("core", core as u64)
                .set("window", row.index)
                .set("at", row.at);
            for (name, value) in &row.fields {
                obj = obj.set(name, *value);
            }
            out.push_str(&obj.render());
            out.push('\n');
        }
    }
    out
}

/// `pythia-cli run <workload> <prefetcher>`
pub fn run(args: &ParsedArgs) -> Result<(), String> {
    let [workload, prefetcher] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli run <workload> <prefetcher> [options]".into());
    };
    if build_prefetcher(prefetcher, 0).is_none() {
        return Err(format!(
            "unknown prefetcher {prefetcher:?}; see `pythia-cli list`"
        ));
    }
    let w = find_workload(workload)?;
    let spec = spec_from(args)?;
    let window = args.opt_num("telemetry-window", 100_000u64)?;
    if window == 0 {
        return Err("--telemetry-window must be positive".into());
    }
    // The telemetry sink rides alongside the measured run; the report it
    // returns is byte-identical to the untelemetered one (test-pinned),
    // so both paths share the summary printer.
    let mut windows = None;
    let (baseline, report, throughput) = timed_pair(
        &spec,
        || run_workload(&w, "none", &spec),
        || match args.opt("telemetry-json") {
            None => run_workload(&w, prefetcher, &spec),
            Some(_) => {
                let (report, rows) = run_workload_telemetry(&w, prefetcher, &spec, window);
                windows = Some(rows);
                report
            }
        },
    );
    print_run_summary(&w.name, prefetcher, &baseline, &report, throughput);
    if let (Some(path), Some(windows)) = (args.opt("telemetry-json"), &windows) {
        write_artifact(path, &telemetry_jsonl(windows))?;
        let rows: usize = windows.iter().map(Vec::len).sum();
        println!("wrote {rows} telemetry window(s) to {path}");
    }
    maybe_write_report_json(args, &report)
}

/// `pythia-cli compare <workload>`
pub fn compare_cmd_default_prefetchers() -> &'static str {
    "spp,bingo,mlop,pythia"
}

/// `pythia-cli compare <workload>`
pub fn compare(args: &ParsedArgs) -> Result<(), String> {
    let [workload] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli compare <workload> [--prefetchers a,b,c]".into());
    };
    let w = find_workload(workload)?;
    let spec = spec_from(args)?;
    let list = args
        .opt("prefetchers")
        .unwrap_or(compare_cmd_default_prefetchers())
        .to_string();
    let baseline = run_workload(&w, "none", &spec);
    let mut t = Table::new(&[
        "prefetcher",
        "speedup",
        "coverage",
        "overprediction",
        "accuracy",
    ]);
    for p in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if build_prefetcher(p, 0).is_none() {
            return Err(format!("unknown prefetcher {p:?}"));
        }
        let m = compare_metrics(&baseline, &run_workload(&w, p, &spec));
        t.row(&[
            p.to_string(),
            format!("{:.3}", m.speedup),
            format!("{:.1}%", m.coverage * 100.0),
            format!("{:.1}%", m.overprediction * 100.0),
            format!("{:.1}%", m.accuracy * 100.0),
        ]);
    }
    println!("{}", t.to_markdown());
    Ok(())
}

/// Builds the ad-hoc sweep described by `--workloads`/`--prefetchers`/...
fn adhoc_sweep_spec(args: &ParsedArgs) -> Result<pythia_sweep::SweepSpec, String> {
    let names = args
        .opt("workloads")
        .ok_or("sweep needs a figure id or --workloads a,b,c")?;
    let mut spec = pythia_sweep::SweepSpec::new("adhoc");
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        spec.units
            .push(pythia_sweep::WorkUnit::single(find_workload(name)?));
    }
    let prefetchers = args
        .opt("prefetchers")
        .unwrap_or(compare_cmd_default_prefetchers())
        .to_string();
    for p in prefetchers
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        spec = spec.with_prefetchers(&[p]);
    }
    if let Some(baseline) = args.opt("baseline") {
        spec = spec.with_baseline(baseline);
    }
    let run = spec_from(args)?;
    spec = spec.with_config(pythia_sweep::ConfigPoint::from_run_spec("base", &run));
    Ok(spec)
}

/// `pythia-cli sweep <figure> | sweep --workloads a,b,c`
pub fn sweep(args: &ParsedArgs) -> Result<(), String> {
    if args.flag("list") {
        println!("# Registered figure/table campaigns\n");
        let mut t = Table::new(&["figure", "title", "panels", "cells"]);
        for def in pythia_bench::figures::registry() {
            let specs = (def.build)();
            let cells: usize = specs.iter().map(|s| s.cell_count()).sum();
            t.row(&[
                def.id.to_string(),
                def.title.to_string(),
                specs.len().to_string(),
                cells.to_string(),
            ]);
        }
        println!("{}", t.to_markdown());
        return Ok(());
    }

    let threads = match args.opt("threads") {
        None => pythia_bench::threads(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return Err(format!("--threads: bad value {v:?}")),
        },
    };
    let format = args.opt("format").unwrap_or("md");

    let campaign = match args.positionals.as_slice() {
        [id] => pythia_bench::figures::campaign(id)
            .ok_or_else(|| format!("unknown figure {id:?}; see `pythia-cli sweep --list`"))?,
        [] => pythia_sweep::Campaign::single(adhoc_sweep_spec(args)?),
        _ => return Err("usage: pythia-cli sweep <figure> [options]".into()),
    };

    // With a cache directory the campaign is content-addressed: a digest
    // hit loads the stored artifact instead of simulating, and the output
    // carries `cached`/`digest` provenance (md and JSON formats).
    let (result, provenance) = match args.opt("cache-dir") {
        None => (
            pythia_sweep::engine::run_all(&campaign.name, &campaign.panels, threads)?,
            None,
        ),
        Some(dir) => {
            let store = pythia_sweep::ResultStore::open(dir)?;
            let (result, cached) = pythia_sweep::run_campaign(&campaign, threads, Some(&store))?;
            (result, Some((cached, campaign.digest())))
        }
    };

    let mut rendered = match &provenance {
        None => result.render(format)?,
        Some((cached, digest)) => match format {
            "json" => result
                .to_json()
                .set("cached", *cached)
                .set("digest", digest.as_str())
                .render_pretty(),
            "md" | "markdown" => format!(
                "{}\ncached: {cached}\ndigest: {digest}\n",
                result.to_markdown().trim_end()
            ),
            other => result.render(other)?,
        },
    };
    // Robustness campaigns carry their scoreboard in the md rendering only
    // (JSON/CSV stay raw cell data, so golden digests pin the campaign).
    if campaign.name.starts_with("robust") && matches!(format, "md" | "markdown") {
        if let Some(reference) = result.distinct(pythia_sweep::Key::Group).first() {
            rendered.push_str(&format!(
                "\n## Robustness vs `{reference}` (Δ of per-group geomeans)\n\n{}",
                result.robustness(reference).to_markdown()
            ));
        }
    }
    match args.opt("out") {
        None => print!("{rendered}"),
        Some(path) => {
            write_artifact(path, &rendered)?;
            println!(
                "wrote sweep {} ({} cells + {} baselines, {format}) to {path}",
                result.name,
                result.cells.len(),
                result.baselines.len()
            );
        }
    }
    if let Some((cached, digest)) = &provenance {
        if args.opt("out").is_some() {
            println!("cached: {cached} (digest {digest})");
        }
    }
    Ok(())
}

/// `pythia-cli bench [--filter S] [--reps N] [--out F] [--baseline F]
/// [--max-regress SPEC] [--list]` — runs the `pythia-perf` microbenchmark
/// registry, prints the results table, optionally writes
/// `BENCH_micro.json`, and optionally gates against a baseline report.
/// `--max-regress` takes either a uniform percentage (`25`) or a default
/// plus per-benchmark overrides (`25,agent_step=15,qvstore_argmax=15`).
///
/// `pythia-cli bench --compare <old.json> <new.json>` skips running
/// anything and prints the per-benchmark delta table (median, MAD,
/// throughput ratio) between two saved reports instead.
pub fn bench(args: &ParsedArgs) -> Result<(), String> {
    if args.flag("list") {
        println!("# Registered microbenchmarks\n");
        for def in pythia_perf::registry() {
            println!("  {} ({})", def.name, def.unit);
        }
        return Ok(());
    }

    // `--sections` profiles where the agent hot path spends its time
    // instead of running the registry: the span-timer breakdown of one
    // sectioned demand step (feature extract, EQ probe, argmax, EQ
    // insert, SARSA) plus the L1 probe fixture.
    if args.flag("sections") {
        let profile = pythia_perf::sections::profile_sections(pythia_bench::scale());
        println!("# Agent hot-path section breakdown\n");
        print!("{}", profile.to_markdown());
        println!(
            "\nprofiled {} agent steps + {} cache probes ({:.1} ms sectioned)",
            profile.agent_ops,
            profile.cache_ops,
            profile.total_ns() as f64 / 1e6
        );
        return Ok(());
    }

    // `--compare old new` parses as option "compare" = old plus one
    // positional (new) — the option grammar binds only the next word.
    if let Some(old_path) = args.opt("compare") {
        let old_path = old_path.to_string();
        let new_path = args
            .positionals
            .first()
            .ok_or("usage: pythia-cli bench --compare <old.json> <new.json>")?;
        let old = load_bench_report(&old_path)?;
        let new = load_bench_report(new_path)?;
        if let Some(warning) = new.host_mismatch(&old) {
            eprintln!("warning: {warning}");
        }
        print!("{}", new.compare_table(&old)?);
        return Ok(());
    }

    let reps = args.opt_num("reps", 7u32)?;
    if reps == 0 {
        return Err("--reps must be positive".into());
    }
    let harness = pythia_perf::Harness {
        measure_reps: reps,
        ..pythia_perf::Harness::default()
    };
    let report = pythia_perf::run_filtered(args.opt("filter"), &harness);
    if report.benchmarks.is_empty() {
        return Err(format!(
            "no benchmark matches filter {:?}; see `pythia-cli bench --list`",
            args.opt("filter").unwrap_or_default()
        ));
    }
    print!("{}", report.to_markdown());

    if let Some(path) = args.opt("out") {
        write_artifact(path, &report.to_json().render_pretty())?;
        println!("wrote {} benchmark(s) to {path}", report.benchmarks.len());
    }

    if let Some(path) = args.opt("baseline") {
        let gate = match args.opt("max-regress") {
            Some(spec) => pythia_stats::RegressGate::parse(spec)?,
            None => pythia_stats::RegressGate::uniform(25.0),
        };
        let baseline = load_bench_report(path)?;
        if let Some(warning) = report.host_mismatch(&baseline) {
            eprintln!("warning: {warning}");
        }
        let regressions = report.compare_gated(&baseline, &gate)?;
        if regressions.is_empty() {
            println!(
                "no benchmark regressed past its threshold (default {}%) vs {path}",
                gate.default_pct
            );
        } else {
            for r in &regressions {
                eprintln!(
                    "regression: {} is {:.1}% slower than baseline \
                     ({:.2} vs {:.2} Munits/s, threshold {}%)",
                    r.name,
                    r.slowdown_pct,
                    r.current_units_per_sec / 1e6,
                    r.baseline_units_per_sec / 1e6,
                    gate.threshold(&r.name),
                );
            }
            return Err(format!(
                "{} benchmark(s) regressed past their thresholds vs {path}",
                regressions.len()
            ));
        }
    }
    Ok(())
}

/// Loads and decodes a saved `BENCH_micro.json` report.
fn load_bench_report(path: &str) -> Result<pythia_stats::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    pythia_stats::json::parse(&text)
        .and_then(|v| pythia_stats::BenchReport::from_json(&v))
        .map_err(|e| format!("{path}: {e}"))
}

/// `pythia-cli trace <record|replay|info|gen> ...`
pub fn trace(args: &ParsedArgs) -> Result<(), String> {
    match args.positionals.first().map(String::as_str) {
        Some("record") => trace_record(args),
        Some("replay") => trace_replay(args),
        Some("info") => trace_info(args),
        Some("gen") => trace_gen(args),
        _ => Err(
            "usage: pythia-cli trace record <workload> <file> [--instructions N]\n\
             \x20      pythia-cli trace replay <file> <prefetcher> [options]\n\
             \x20      pythia-cli trace info <file>\n\
             \x20      pythia-cli trace gen <profile> [--seed N] [--out DIR] [--stats-json [FILE]]"
                .into(),
        ),
    }
}

/// `pythia-cli trace gen <profile>` — renders a robustness profile
/// (expected / stress / adversarial). Default output is a per-trace
/// summary table; `--out DIR` additionally records each trace as a binary
/// file; `--stats-json` emits the full stats bundle (access counts,
/// coverage ratio, phase map) — to a file when given a value, alone on
/// stdout as a bare flag (so it pipes into JSON tooling).
fn trace_gen(args: &ParsedArgs) -> Result<(), String> {
    let [_, profile_name] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli trace gen <expected|stress|adversarial> \
             [--seed N] [--instructions N] [--out DIR] [--stats-json [FILE]]"
            .into());
    };
    let profile = Profile::parse(profile_name).ok_or_else(|| {
        format!("unknown profile {profile_name:?}; profiles: expected, stress, adversarial")
    })?;
    let seed = args.opt_num("seed", CAMPAIGN_SEED)?;
    let n = args.opt_num("instructions", 100_000usize)?;
    if n == 0 {
        return Err("--instructions must be positive".into());
    }
    let workloads = profile.workloads(seed);
    // A bare `--stats-json` owns stdout (pure JSON), so side notices from
    // `--out` go to stderr in that mode.
    let json_to_stdout = args.flag("stats-json") && args.opt("stats-json").is_none();
    if let Some(dir) = args.opt("out") {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        for w in &workloads {
            let path = format!("{dir}/{}.trace", w.name);
            let mut writer = TraceWriter::create(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut source = w.source(n);
            while let Some(r) = source.next_record() {
                writer
                    .write_record(&r)
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            writer.finish().map_err(|e| format!("{path}: {e}"))?;
        }
        let notice = format!(
            "wrote {} {} traces ({n} instructions each) to {dir}",
            workloads.len(),
            profile.label()
        );
        if json_to_stdout {
            eprintln!("{notice}");
        } else {
            println!("{notice}");
        }
    }
    if args.flag("stats-json") {
        let json = profile_stats(profile, seed, n).render_pretty();
        match args.opt("stats-json") {
            Some(path) => {
                write_artifact(path, &json)?;
                println!("wrote {} profile stats to {path}", profile.label());
            }
            None => print!("{json}"),
        }
        return Ok(());
    }
    println!(
        "# Profile {} — {} (seed {seed})\n",
        profile.label(),
        profile.description()
    );
    let mut t = Table::new(&[
        "trace",
        "pattern",
        "seed",
        "mem accesses",
        "distinct lines",
        "coverage",
    ]);
    for w in &workloads {
        let s = trace_stats(w, n);
        let get = |k: &str| s.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        t.row(&[
            w.name.clone(),
            pattern_label(&w.spec.kind).to_string(),
            w.spec.seed.to_string(),
            get("mem_accesses").to_string(),
            get("distinct_lines").to_string(),
            format!(
                "{:.4}",
                s.get("coverage_ratio")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            ),
        ]);
    }
    println!("{}", t.to_markdown());
    Ok(())
}

/// `pythia-cli trace record <workload> <file>` — streams the workload's
/// generator straight into the incremental binary encoder; no point of
/// the pipeline holds the trace in memory.
fn trace_record(args: &ParsedArgs) -> Result<(), String> {
    let [_, workload, out_file] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli trace record <workload> <file> [--instructions N]".into());
    };
    let w = find_workload(workload)?;
    let n = args.opt_num("instructions", 500_000usize)?;
    if n == 0 {
        return Err("--instructions must be positive".into());
    }
    let mut writer = TraceWriter::create(out_file).map_err(|e| format!("{out_file}: {e}"))?;
    let mut source = w.source(n);
    while let Some(r) = source.next_record() {
        writer
            .write_record(&r)
            .map_err(|e| format!("{out_file}: {e}"))?;
    }
    let (file, count) = writer.finish().map_err(|e| format!("{out_file}: {e}"))?;
    let bytes = file
        .metadata()
        .map(|m| m.len())
        .map_err(|e| format!("{out_file}: {e}"))?;
    println!("recorded {count} instructions ({bytes} bytes) to {out_file}");
    Ok(())
}

/// `pythia-cli trace replay <file> <prefetcher>` — simulates straight
/// from a trace file. With the same budgets and a trace recorded at
/// `--instructions warmup+measure`, the report is byte-identical to the
/// equivalent `pythia-cli run` (pinned by the CI record→replay smoke).
fn trace_replay(args: &ParsedArgs) -> Result<(), String> {
    let [_, file, prefetcher] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli trace replay <file> <prefetcher> [options]".into());
    };
    if build_prefetcher(prefetcher, 0).is_none() {
        return Err(format!(
            "unknown prefetcher {prefetcher:?}; see `pythia-cli list`"
        ));
    }
    let spec = spec_from(args)?;
    // The first open fully validates the file; the baseline pass then
    // reopens it on the header-only fast path instead of re-scanning.
    let validated: Box<dyn TraceSource> =
        Box::new(FileTraceSource::open(file).map_err(|e| format!("{file}: {e}"))?);
    let trusted: Box<dyn TraceSource> =
        Box::new(FileTraceSource::open_trusted(file).map_err(|e| format!("{file}: {e}"))?);
    let (baseline, report, throughput) = timed_pair(
        &spec,
        || run_sources(vec![trusted], "none", &spec),
        || run_sources(vec![validated], prefetcher, &spec),
    );
    print_run_summary(file, prefetcher, &baseline, &report, throughput);
    maybe_write_report_json(args, &report)
}

/// `pythia-cli trace info <file> [--json]` — header and one-pass stream
/// statistics, human-readable by default, machine-readable with `--json`.
fn trace_info(args: &ParsedArgs) -> Result<(), String> {
    let [_, file] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli trace info <file> [--json]".into());
    };
    let info = trace_file_info(file).map_err(|e| format!("{file}: {e}"))?;
    if args.flag("json") {
        let mut out = pythia_stats::json::Json::obj()
            .set("file", file.as_str())
            .set("version", u64::from(info.version))
            .set("file_bytes", info.file_bytes)
            .set("records", info.records)
            .set("loads", info.loads)
            .set("stores", info.stores)
            .set("branches", info.branches)
            .set("mispredicts", info.mispredicts)
            .set("dependent_loads", info.dependent_loads);
        out = match info.addr_range {
            None => out.set("addr_range", pythia_stats::json::Json::Null),
            Some((lo, hi)) => out.set(
                "addr_range",
                pythia_stats::json::Json::obj().set("lo", lo).set("hi", hi),
            ),
        };
        print!("{}", out.render_pretty());
        return Ok(());
    }
    let pct = |n: u64| n as f64 * 100.0 / info.records.max(1) as f64;
    println!("file            : {file}");
    println!("format version  : {}", info.version);
    println!("file size       : {} bytes", info.file_bytes);
    println!("records         : {}", info.records);
    println!("loads           : {} ({:.1}%)", info.loads, pct(info.loads));
    println!(
        "stores          : {} ({:.1}%)",
        info.stores,
        pct(info.stores)
    );
    println!(
        "branches        : {} ({:.1}%, {} mispredicted)",
        info.branches,
        pct(info.branches),
        info.mispredicts
    );
    println!("dependent loads : {}", info.dependent_loads);
    match info.addr_range {
        Some((lo, hi)) => println!("address range   : {lo:#x}..{hi:#x}"),
        None => println!("address range   : (no memory operations)"),
    }
    Ok(())
}

/// `pythia-cli serve [--addr A] [--workers N] [--threads N] [--queue N]
/// [--cache-dir DIR] [--cache-max-bytes N] [--max-conns N]
/// [--journal FILE] [--log-level LVL]` — runs the campaign service
/// until killed.
pub fn serve(args: &ParsedArgs) -> Result<(), String> {
    let addr = args.opt("addr").unwrap_or("127.0.0.1:7071");
    let workers = args.opt_num("workers", 1usize)?.max(1);
    let queue_cap = args.opt_num("queue", 64usize)?.max(1);
    let max_conns = args.opt_num("max-conns", 64usize)?.max(1);
    let cache_max_bytes = match args.opt("cache-max-bytes") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => return Err(format!("--cache-max-bytes: bad value {v:?}")),
        },
    };
    let sim_threads = match args.opt("threads") {
        None => pythia_bench::threads(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return Err(format!("--threads: bad value {v:?}")),
        },
    };
    // The service defaults to lifecycle logging (`info`); the library
    // default stays `warn` for embedded use.
    let log_level = match args.opt("log-level") {
        None => Level::Info,
        Some(name) => Level::parse(name).ok_or_else(|| {
            format!("--log-level: unknown level {name:?} (error|warn|info|debug)")
        })?,
    };
    let config = pythia_serve::ServeConfig {
        workers,
        queue_cap,
        sim_threads,
        cache_dir: args.opt("cache-dir").map(std::path::PathBuf::from),
        cache_max_bytes,
        max_conns,
        journal: args.opt("journal").map(std::path::PathBuf::from),
        log_level,
        ..pythia_serve::ServeConfig::default()
    };
    let server = pythia_serve::Server::bind(addr, &config)?;
    // The `listening on` line is the startup handshake: scripts (and the
    // CI smoke) parse the resolved address from it when binding to :0.
    println!("listening on {}", server.local_addr()?);
    println!(
        "workers: {workers}  queue: {queue_cap}  sim-threads: {sim_threads}  max-conns: {max_conns}  cache: {}",
        config
            .cache_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "(memory only)".into())
    );
    server.serve_forever()
}

/// `pythia-cli submit <figure> --addr HOST:PORT` — submits a campaign
/// (optionally under a `--tenant` key with a fair-queueing `--priority`),
/// polls it to completion printing cell progress (with elapsed wall time
/// and the service's aggregate Minst/s from `/metrics`), and fetches the
/// rendered result.
pub fn submit(args: &ParsedArgs) -> Result<(), String> {
    let [figure] = args.positionals.as_slice() else {
        return Err("usage: pythia-cli submit <figure> --addr HOST:PORT [options]".into());
    };
    let addr = args
        .opt("addr")
        .ok_or("submit needs --addr HOST:PORT (see `pythia-cli serve`)")?;
    let format = args.opt("format").unwrap_or("md");
    let poll = std::time::Duration::from_millis(args.opt_num("poll-ms", 200u64)?.max(10));
    let timeout = std::time::Duration::from_secs(args.opt_num("timeout-s", 600u64)?.max(1));
    let tenant = args.opt("tenant").unwrap_or("");
    let priority = args.opt_num("priority", 1u64)?;

    let submitted = pythia_serve::client::submit_figure_as(addr, figure, tenant, priority)?;
    eprintln!(
        "submitted {figure} as {} (status: {}, cached: {})",
        submitted.digest, submitted.status, submitted.cached
    );
    // Progress lines go to stderr (like the submission banner) so stdout
    // stays a clean artifact stream for `--out`-less pipelines. Each line
    // carries elapsed wall time plus the service's aggregate simulation
    // throughput pulled from `GET /metrics` (best-effort: a failed poll
    // just omits the rate).
    let started = std::time::Instant::now();
    let mut last_done = None;
    pythia_serve::client::wait_done_with(addr, &submitted.digest, poll, timeout, |done, total| {
        if last_done != Some(done) {
            last_done = Some(done);
            let rate = pythia_serve::client::metrics(addr)
                .ok()
                .and_then(|m| {
                    m.get("throughput")
                        .and_then(|t| t.get("minst_per_sec"))
                        .and_then(|v| v.as_f64())
                })
                .map(|minst| format!(", {minst:.2} Minst/s"))
                .unwrap_or_default();
            eprintln!(
                "progress: {done}/{total} cells ({:.1} s elapsed{rate})",
                started.elapsed().as_secs_f64()
            );
        }
    })?;
    let rendered = pythia_serve::client::result(addr, &submitted.digest, format)?;
    match args.opt("out") {
        None => print!("{rendered}"),
        Some(path) => {
            write_artifact(path, &rendered)?;
            println!("wrote campaign {} ({format}) to {path}", submitted.digest);
        }
    }
    println!("cached: {}", submitted.cached);
    Ok(())
}

/// `pythia-cli storage`
pub fn storage(_args: &ParsedArgs) -> Result<(), String> {
    let cfg = PythiaConfig::basic();
    let s = hw_model::storage(&cfg);
    println!(
        "Pythia metadata: {:.1} KB (QVStore {:.1} KB + EQ {:.1} KB)",
        s.total_kb(),
        s.qvstore_bits as f64 / 8192.0,
        s.eq_bits as f64 / 8192.0
    );
    let o = hw_model::estimate_overhead(&cfg);
    println!(
        "Per-core estimate: {:.2} mm^2, {:.2} mW (14nm anchors, §6.7)",
        o.area_mm2, o.power_mw
    );
    let mut t = Table::new(&["prefetcher", "metadata"]);
    for name in [
        "stride", "streamer", "spp", "dspatch", "mlop", "ipcp", "spp+ppf", "pythia", "bingo",
    ] {
        let p = build_prefetcher(name, 0).expect("known prefetcher");
        t.row(&[
            name.to_string(),
            format!("{:.1} KB", p.storage_bits() as f64 / 8192.0),
        ]);
    }
    println!("{}", t.to_markdown());
    Ok(())
}
