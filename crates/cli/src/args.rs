//! A small hand-rolled argument parser (the workspace's dependency budget
//! excludes clap): positional subcommands plus `--key value` / `--flag`
//! options.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, its positionals, and options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
    /// `--key value` options and boolean `--flag`s (value `""`).
    pub options: BTreeMap<String, String>,
}

/// Errors produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An option was given twice.
    DuplicateOption(String),
    /// An option expecting a value was last on the line... values are
    /// optional in this grammar, so this only fires for `--` itself.
    BareDoubleDash,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateOption(k) => write!(f, "option --{k} given more than once"),
            Self::BareDoubleDash => write!(f, "unexpected bare `--`"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an argument list (excluding `argv[0]`).
///
/// Grammar: the first bare word is the subcommand; later bare words are
/// positionals; `--key value` binds the next bare word as the value unless
/// it starts with `--`, in which case `key` is a boolean flag.
///
/// # Errors
///
/// Returns [`ParseError`] on duplicate options or a bare `--`.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<ParsedArgs, ParseError> {
    let mut out = ParsedArgs::default();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if key.is_empty() {
                return Err(ParseError::BareDoubleDash);
            }
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                _ => String::new(),
            };
            if out.options.insert(key.to_string(), value).is_some() {
                return Err(ParseError::DuplicateOption(key.to_string()));
            }
        } else if out.command.is_none() {
            out.command = Some(arg);
        } else {
            out.positionals.push(arg);
        }
    }
    Ok(out)
}

impl ParsedArgs {
    /// Returns an option's value, if present and non-empty.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .map(String::as_str)
            .filter(|v| !v.is_empty())
    }

    /// Returns whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Parses an option as a number, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the option on parse failure.
    pub fn opt_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> ParsedArgs {
        parse(s.split_whitespace().map(String::from)).expect("parse")
    }

    #[test]
    fn subcommand_and_positionals() {
        let a = p("run gems pythia");
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.positionals, vec!["gems", "pythia"]);
    }

    #[test]
    fn options_and_flags() {
        let a = p("run w --measure 100000 --verbose --mtps 600");
        assert_eq!(a.opt("measure"), Some("100000"));
        assert_eq!(a.opt("mtps"), Some("600"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.opt("verbose"), None, "flags have empty values");
    }

    #[test]
    fn numeric_parsing_with_default() {
        let a = p("run --measure 5000");
        assert_eq!(a.opt_num("measure", 1u64), Ok(5000));
        assert_eq!(a.opt_num("warmup", 7u64), Ok(7));
        let bad = p("run --measure xyz");
        assert!(bad.opt_num("measure", 1u64).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        let e = parse("run --a 1 --a 2".split_whitespace().map(String::from));
        assert_eq!(e, Err(ParseError::DuplicateOption("a".into())));
    }

    #[test]
    fn empty_line_is_empty() {
        let a = p("");
        assert_eq!(a.command, None);
        assert!(a.positionals.is_empty());
    }

    #[test]
    fn option_before_subcommand_consumes_next_word() {
        // Grammar: `--key value` binds the next bare word, so an option
        // before the subcommand swallows it; flags must come after
        // positionals (or before another `--option`).
        let a = p("--quiet run w");
        assert_eq!(a.opt("quiet"), Some("run"));
        assert_eq!(a.command.as_deref(), Some("w"));
        // A flag directly followed by another option stays boolean, while
        // the second option binds the following bare word.
        let a = p("--quiet --fast run w");
        assert!(a.flag("quiet"));
        assert_eq!(a.opt("quiet"), None);
        assert_eq!(a.opt("fast"), Some("run"));
        assert_eq!(a.command.as_deref(), Some("w"));
    }
}
