//! `pythia-cli` — command-line front end for the Pythia reproduction.
//!
//! ```text
//! pythia-cli list                              # workloads and prefetchers
//! pythia-cli run <workload> <prefetcher> [--warmup N] [--measure N]
//!                [--mtps N] [--llc-kb N] [--cores N]
//! pythia-cli compare <workload> [--prefetchers a,b,c] [...]
//! pythia-cli sweep <figure> [--threads N] [--format md|json|csv] [--out F]
//! pythia-cli sweep --workloads a,b,c [--prefetchers x,y] [...]
//! pythia-cli trace record <workload> <file> [--instructions N]
//! pythia-cli trace replay <file> <prefetcher> [--warmup N] [--measure N]
//! pythia-cli trace info <file> [--json]
//! pythia-cli trace gen <profile> [--seed N] [--out DIR] [--stats-json [F]]
//! pythia-cli storage                           # Tables 4/7/8 summary
//! pythia-cli serve [--addr A] [--workers N] [--cache-dir DIR]
//! pythia-cli submit <figure> --addr HOST:PORT [--format md|json|csv]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command.as_deref() {
        Some("list") => commands::list(&parsed),
        Some("run") => commands::run(&parsed),
        Some("compare") => commands::compare(&parsed),
        Some("sweep") => commands::sweep(&parsed),
        Some("bench") => commands::bench(&parsed),
        Some("trace") => commands::trace(&parsed),
        Some("storage") => commands::storage(&parsed),
        Some("serve") => commands::serve(&parsed),
        Some("submit") => commands::submit(&parsed),
        Some("help") | None => {
            print!("{}", commands::HELP);
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown subcommand {other:?}; try `pythia-cli help`"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
