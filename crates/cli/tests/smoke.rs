//! End-to-end smoke tests for the `pythia-cli` binary: exit codes and
//! output shape for every subcommand, plus the hand-rolled arg parser's
//! error paths.

use std::process::{Command, Output};

/// A workload from `all_suites()` that simulates quickly.
const WORKLOAD: &str = "401.gcc-13B";

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pythia-cli"))
        .args(args)
        .output()
        .expect("spawn pythia-cli")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Small budgets so each simulation finishes in well under a second.
const FAST: &[&str] = &["--warmup", "1000", "--measure", "4000"];

#[test]
fn no_args_prints_help_and_succeeds() {
    let out = cli(&[]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("USAGE"), "help must show usage: {text}");
    for sub in ["list", "run", "compare", "sweep", "trace", "storage"] {
        assert!(text.contains(sub), "help must mention {sub}");
    }
}

#[test]
fn list_prints_workloads_and_prefetchers() {
    let out = cli(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("# Workloads"));
    assert!(text.contains("# Prefetchers"));
    assert!(text.contains(WORKLOAD));
    for p in ["spp", "bingo", "pythia", "pythia_strict"] {
        assert!(text.contains(p), "list must advertise {p}");
    }
}

#[test]
fn list_names_is_machine_readable() {
    let out = cli(&["list", "--names"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let names: Vec<&str> = text.lines().collect();
    assert!(
        names.len() >= 50,
        "expected the full workload pool, got {}",
        names.len()
    );
    assert!(names.contains(&WORKLOAD));
    assert!(names.iter().all(|n| !n.trim().is_empty()));
}

#[test]
fn run_reports_metrics() {
    let out = cli(&[&["run", WORKLOAD, "pythia"], FAST].concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for field in [
        "speedup",
        "coverage",
        "overprediction",
        "accuracy",
        "prefetches",
        "throughput",
        "Minst/s",
    ] {
        assert!(
            text.contains(field),
            "run output must report {field}: {text}"
        );
    }
}

#[test]
fn run_requires_both_positionals() {
    let out = cli(&["run", WORKLOAD]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: pythia-cli run"));
}

#[test]
fn run_rejects_unknown_workload_and_prefetcher() {
    let out = cli(&["run", "no-such-workload", "spp"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown workload"));

    let out = cli(&["run", WORKLOAD, "no-such-prefetcher"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown prefetcher"));
}

#[test]
fn run_rejects_malformed_numeric_options() {
    let out = cli(&["run", WORKLOAD, "spp", "--measure", "not-a-number"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--measure"));
}

#[test]
fn compare_renders_one_row_per_prefetcher() {
    let out = cli(&[&["compare", WORKLOAD, "--prefetchers", "spp,stride"], FAST].concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("| prefetcher |"),
        "expected a markdown table: {text}"
    );
    assert!(text.contains("spp"));
    assert!(text.contains("stride"));
}

#[test]
fn compare_rejects_unknown_prefetcher_in_list() {
    let out = cli(&[&["compare", WORKLOAD, "--prefetchers", "spp,bogus"], FAST].concat());
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown prefetcher"));
}

#[test]
fn trace_record_writes_a_decodable_file() {
    let dir = std::env::temp_dir().join("pythia_cli_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("out.pytr");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = cli(&[
        "trace",
        "record",
        WORKLOAD,
        path_str,
        "--instructions",
        "5000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("recorded 5000 instructions"));
    let bytes = std::fs::read(&path).expect("trace file written");
    let records = pythia_sim::trace::decode_trace(bytes.as_slice()).expect("decodable trace");
    assert_eq!(records.len(), 5000);
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_record_replay_roundtrip_matches_direct_run() {
    let dir = std::env::temp_dir().join("pythia_cli_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("w.pytr");
    let trace_str = trace_path.to_str().expect("utf-8 temp path");
    let direct_json = dir.join("direct.json");
    let replay_json = dir.join("replay.json");

    // Record exactly warmup+measure instructions, then both paths must
    // produce byte-identical SimReport JSON.
    let out = cli(&[
        "trace",
        "record",
        WORKLOAD,
        trace_str,
        "--instructions",
        "5000",
    ]);
    assert!(out.status.success(), "record: {}", stderr(&out));
    let out = cli(&[
        &["run", WORKLOAD, "stride"],
        FAST,
        &["--report-json", direct_json.to_str().expect("utf-8")],
    ]
    .concat());
    assert!(out.status.success(), "run: {}", stderr(&out));
    let out = cli(&[
        &["trace", "replay", trace_str, "stride"],
        FAST,
        &["--report-json", replay_json.to_str().expect("utf-8")],
    ]
    .concat());
    assert!(out.status.success(), "replay: {}", stderr(&out));
    assert!(stdout(&out).contains("speedup"));

    let direct = std::fs::read(&direct_json).expect("direct report");
    let replay = std::fs::read(&replay_json).expect("replay report");
    assert!(!direct.is_empty());
    assert_eq!(
        direct, replay,
        "record → replay must reproduce the direct run byte-for-byte"
    );
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&direct_json).ok();
    std::fs::remove_file(&replay_json).ok();
}

#[test]
fn trace_info_reports_header_and_mix() {
    let dir = std::env::temp_dir().join("pythia_cli_info");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("info.pytr");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = cli(&[
        "trace",
        "record",
        WORKLOAD,
        path_str,
        "--instructions",
        "3000",
    ]);
    assert!(out.status.success(), "record: {}", stderr(&out));
    let out = cli(&["trace", "info", path_str]);
    assert!(out.status.success(), "info: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("records         : 3000"), "{text}");
    for field in [
        "format version",
        "loads",
        "stores",
        "branches",
        "address range",
    ] {
        assert!(text.contains(field), "info must report {field}: {text}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_gen_stats_json_is_pure_and_parses() {
    // A bare `--stats-json` must own stdout (pure JSON, pipeable).
    let out = cli(&[
        "trace",
        "gen",
        "adversarial",
        "--instructions",
        "2000",
        "--stats-json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let json = pythia_stats::json::parse(&text).expect("stdout must be pure JSON");
    assert_eq!(
        json.get("profile").and_then(|v| v.as_str()),
        Some("adversarial")
    );
    let traces = json.get("traces").and_then(|v| v.as_arr()).expect("traces");
    assert!(!traces.is_empty());
    for t in traces {
        let ratio = t
            .get("coverage_ratio")
            .and_then(|v| v.as_f64())
            .expect("coverage_ratio");
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio={ratio}");
        assert!(t.get("phase_map").and_then(|v| v.as_arr()).is_some());
    }
}

#[test]
fn trace_gen_writes_traces_and_summary() {
    let dir = std::env::temp_dir().join("pythia_cli_gen");
    std::fs::remove_dir_all(&dir).ok();
    let dir_str = dir.to_str().expect("utf-8 temp path");
    let out = cli(&[
        "trace",
        "gen",
        "expected",
        "--instructions",
        "2000",
        "--out",
        dir_str,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("# Profile expected"), "{text}");
    assert!(text.contains("coverage"), "{text}");
    let files: Vec<_> = std::fs::read_dir(&dir).expect("out dir").collect();
    assert_eq!(files.len(), 6, "one trace file per expected-profile unit");
    // Spot-check one file decodes.
    let bytes = std::fs::read(dir.join("exp-stream.trace")).expect("trace file");
    let records = pythia_sim::trace::decode_trace(bytes.as_slice()).expect("decodable");
    assert_eq!(records.len(), 2000);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_gen_rejects_unknown_profile() {
    let out = cli(&["trace", "gen", "bogus"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown profile"));
}

#[test]
fn sweep_robust_campaigns_are_listed() {
    let out = cli(&["sweep", "--list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for id in ["robust01", "robust02", "robust03"] {
        assert!(text.contains(id), "sweep --list must show {id}");
    }
}

#[test]
fn trace_rejects_bad_subcommand_and_bad_file() {
    let out = cli(&["trace", WORKLOAD, "out.pytr"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: pythia-cli trace record"));

    let out = cli(&["trace", "replay", "/no/such/file.pytr", "stride"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("/no/such/file.pytr"));

    let out = cli(&["trace", "info", "/no/such/file.pytr"]);
    assert!(!out.status.success());

    // A non-trace file is rejected with a decode error, not a panic.
    let dir = std::env::temp_dir().join("pythia_cli_badfile");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("not_a_trace.pytr");
    std::fs::write(&path, b"this is not a trace file, not even close").expect("write");
    let out = cli(&["trace", "replay", path.to_str().expect("utf-8"), "stride"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad magic"), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_list_shows_registered_figures() {
    let out = cli(&["sweep", "--list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for id in ["fig09", "fig10", "tab02", "ablation"] {
        assert!(text.contains(id), "sweep --list must mention {id}: {text}");
    }
}

#[test]
fn sweep_adhoc_markdown_has_baseline_and_cells() {
    let out = cli(&[
        &[
            "sweep",
            "--workloads",
            WORKLOAD,
            "--prefetchers",
            "stride",
            "--threads",
            "2",
        ],
        FAST,
    ]
    .concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("| sweep |"), "long-format table: {text}");
    assert!(text.contains("none"), "baseline row present");
    assert!(text.contains("stride"));
}

#[test]
fn sweep_adhoc_json_parses_and_out_writes_file() {
    let dir = std::env::temp_dir().join("pythia_cli_sweep_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sweep.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = cli(&[
        &[
            "sweep",
            "--workloads",
            WORKLOAD,
            "--prefetchers",
            "stride,spp",
            "--format",
            "json",
            "--out",
            path_str,
        ],
        FAST,
    ]
    .concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("wrote sweep"));
    let text = std::fs::read_to_string(&path).expect("json written");
    let parsed = pythia_stats::json::parse(&text).expect("emitted JSON parses");
    let cells = parsed.get("cells").and_then(|c| c.as_arr()).expect("cells");
    assert_eq!(cells.len(), 2, "one cell per prefetcher");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_unknown_figure_and_format() {
    let out = cli(&["sweep", "no-such-figure"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown figure"));

    let out = cli(&[&["sweep", "--workloads", WORKLOAD, "--format", "xml"], FAST].concat());
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown format"));
}

/// `bench` variant of [`cli`] pinning a tiny `PYTHIA_BENCH_SCALE` so each
/// repetition stays in the millisecond range.
fn bench_cli(args: &[&str], threads_env: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pythia-cli"));
    cmd.args(args).env("PYTHIA_BENCH_SCALE", "0.01");
    if let Some(v) = threads_env {
        cmd.env("PYTHIA_BENCH_THREADS", v);
    }
    cmd.output().expect("spawn pythia-cli")
}

#[test]
fn bench_list_names_required_benchmarks() {
    let out = bench_cli(&["bench", "--list"], None);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in [
        "agent_step",
        "cache_probe",
        "trace_decode",
        "e2e_single_core",
    ] {
        assert!(text.contains(name), "bench --list must mention {name}");
    }
}

#[test]
fn bench_filtered_run_writes_json_report() {
    let dir = std::env::temp_dir().join("pythia_cli_bench_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("BENCH_micro.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = bench_cli(
        &[
            "bench",
            "--filter",
            "trace_decode",
            "--reps",
            "2",
            "--out",
            path_str,
        ],
        None,
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("trace_decode"), "table row present: {text}");
    let json = std::fs::read_to_string(&path).expect("report written");
    let report = pythia_stats::json::parse(&json)
        .and_then(|v| pythia_stats::BenchReport::from_json(&v))
        .expect("valid BENCH_micro.json");
    assert_eq!(report.benchmarks.len(), 1);
    assert_eq!(report.benchmarks[0].name, "trace_decode");
    assert!((report.scale - 0.01).abs() < 1e-12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_baseline_gate_passes_against_itself_and_fails_vs_impossible() {
    let dir = std::env::temp_dir().join("pythia_cli_bench_gate");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("baseline.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    // Record a baseline, then compare a fresh run against it: never a
    // >400% regression between two back-to-back runs.
    let out = bench_cli(
        &[
            "bench", "--filter", "qvstore", "--reps", "3", "--out", path_str,
        ],
        None,
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let out = bench_cli(
        &[
            "bench",
            "--filter",
            "qvstore",
            "--reps",
            "3",
            "--baseline",
            path_str,
            "--max-regress",
            "400",
        ],
        None,
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("no benchmark regressed"));

    // Doctor the baseline to claim implausibly fast numbers: the gate must
    // fail and name the regressing benchmark.
    let doctored = std::fs::read_to_string(&path)
        .expect("baseline written")
        .replace("\"median_ns\": ", "\"median_ns\": 0.0000");
    std::fs::write(&path, doctored).expect("rewrite baseline");
    let out = bench_cli(
        &[
            "bench",
            "--filter",
            "qvstore_argmax",
            "--reps",
            "2",
            "--baseline",
            path_str,
        ],
        None,
    );
    assert!(!out.status.success(), "doctored baseline must gate");
    let err = stderr(&out);
    assert!(
        err.contains("regression: qvstore_argmax"),
        "regression names the benchmark: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_rejects_unmatched_filter_and_bad_reps() {
    let out = bench_cli(&["bench", "--filter", "no-such-benchmark"], None);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("no benchmark matches"));
    let out = bench_cli(&["bench", "--reps", "0"], None);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--reps must be positive"));
}

#[test]
fn bench_threads_zero_is_clamped_with_a_warning() {
    // PYTHIA_BENCH_THREADS=0 must not abort or silently fan out to zero
    // workers: the sweep engine warns and clamps to one thread.
    let out = Command::new(env!("CARGO_BIN_EXE_pythia-cli"))
        .args([
            "sweep",
            "--workloads",
            WORKLOAD,
            "--prefetchers",
            "stride",
            "--warmup",
            "1000",
            "--measure",
            "4000",
        ])
        .env("PYTHIA_BENCH_THREADS", "0")
        .output()
        .expect("spawn pythia-cli");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("PYTHIA_BENCH_THREADS=0 would run no workers; clamping to 1"),
        "clamp warning must reach the user: {}",
        stderr(&out)
    );
}

#[test]
fn storage_prints_overhead_tables() {
    let out = cli(&["storage"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Pythia metadata"));
    assert!(text.contains("mm^2"));
    assert!(text.contains("| prefetcher |"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = cli(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown subcommand"));
}

#[test]
fn parser_error_paths_reach_the_user() {
    // Duplicate option.
    let out = cli(&["run", WORKLOAD, "spp", "--measure", "1", "--measure", "2"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("more than once"));

    // Bare `--`.
    let out = cli(&["run", "--"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unexpected bare"));
}

#[test]
fn trace_info_json_is_machine_readable() {
    let dir = std::env::temp_dir().join("pythia_cli_info_json");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("info.pytr");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = cli(&[
        "trace",
        "record",
        WORKLOAD,
        path_str,
        "--instructions",
        "3000",
    ]);
    assert!(out.status.success(), "record: {}", stderr(&out));
    let out = cli(&["trace", "info", path_str, "--json"]);
    assert!(out.status.success(), "info --json: {}", stderr(&out));
    let parsed = pythia_stats::json::parse(&stdout(&out)).expect("info JSON parses");
    assert_eq!(
        parsed.get("records").and_then(|v| v.as_u64()),
        Some(3000),
        "record count"
    );
    assert_eq!(parsed.get("version").and_then(|v| v.as_u64()), Some(1));
    let size = parsed
        .get("file_bytes")
        .and_then(|v| v.as_u64())
        .expect("file size");
    assert_eq!(size, std::fs::metadata(&path).expect("metadata").len());
    for key in [
        "loads",
        "stores",
        "branches",
        "mispredicts",
        "dependent_loads",
    ] {
        assert!(
            parsed.get(key).and_then(|v| v.as_u64()).is_some(),
            "info JSON must carry {key}"
        );
    }
    assert!(
        parsed.get("addr_range").is_some(),
        "info JSON must carry addr_range"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn out_paths_create_missing_parent_directories() {
    let root = std::env::temp_dir().join(format!("pythia_cli_outdirs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // sweep --out into a directory that does not exist yet.
    let sweep_out = root.join("a/b/sweep.json");
    let out = cli(&[
        &[
            "sweep",
            "--workloads",
            WORKLOAD,
            "--prefetchers",
            "stride",
            "--format",
            "json",
            "--out",
            sweep_out.to_str().expect("utf-8"),
        ],
        FAST,
    ]
    .concat());
    assert!(out.status.success(), "sweep --out: {}", stderr(&out));
    assert!(sweep_out.is_file(), "sweep artifact written");

    // run --report-json likewise.
    let report_out = root.join("c/d/report.json");
    let out = cli(&[
        &["run", WORKLOAD, "stride"],
        FAST,
        &["--report-json", report_out.to_str().expect("utf-8")],
    ]
    .concat());
    assert!(out.status.success(), "run --report-json: {}", stderr(&out));
    assert!(report_out.is_file(), "report artifact written");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sweep_cache_dir_hits_skip_simulation_and_carry_provenance() {
    let root = std::env::temp_dir().join(format!("pythia_cli_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let args: &[&str] = &[
        &[
            "sweep",
            "--workloads",
            WORKLOAD,
            "--prefetchers",
            "stride",
            "--format",
            "json",
            "--cache-dir",
            root.to_str().expect("utf-8"),
        ],
        FAST,
    ]
    .concat();

    let miss = cli(args);
    assert!(miss.status.success(), "miss: {}", stderr(&miss));
    let miss_json = pythia_stats::json::parse(&stdout(&miss)).expect("miss JSON parses");
    assert_eq!(
        miss_json.get("cached").and_then(|v| v.as_bool()),
        Some(false),
        "first run is a miss"
    );
    let digest = miss_json
        .get("digest")
        .and_then(|v| v.as_str())
        .expect("digest provenance")
        .to_string();
    assert!(
        root.join(format!("{digest}.json")).is_file(),
        "artifact persisted"
    );

    let hit = cli(args);
    assert!(hit.status.success(), "hit: {}", stderr(&hit));
    let hit_json = pythia_stats::json::parse(&stdout(&hit)).expect("hit JSON parses");
    assert_eq!(
        hit_json.get("cached").and_then(|v| v.as_bool()),
        Some(true),
        "second run is a hit"
    );

    // Identical payload modulo the provenance flag.
    let strip = |j: &pythia_stats::json::Json| match j {
        pythia_stats::json::Json::Obj(fields) => pythia_stats::json::Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "cached")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    };
    assert_eq!(
        strip(&hit_json).render(),
        strip(&miss_json).render(),
        "hit payload is byte-identical to the miss payload"
    );

    // The md format prints the same provenance lines.
    let md_args: Vec<&str> = args
        .iter()
        .map(|a| if *a == "json" { "md" } else { *a })
        .collect();
    let md = cli(&md_args);
    assert!(md.status.success(), "md hit: {}", stderr(&md));
    let text = stdout(&md);
    assert!(text.contains("cached: true"), "{text}");
    assert!(text.contains(&format!("digest: {digest}")), "{text}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn serve_and_submit_usage_errors() {
    // submit without --addr is a usage error, not a hang.
    let out = cli(&["submit", "fig01"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--addr"), "{}", stderr(&out));

    // submit against a dead port fails fast with a transport error.
    let out = cli(&[
        "submit",
        "fig01",
        "--addr",
        "127.0.0.1:9",
        "--timeout-s",
        "2",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("connect"), "{}", stderr(&out));

    // serve on an unbindable address reports the bind failure.
    let out = cli(&["serve", "--addr", "256.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bind"), "{}", stderr(&out));

    // help advertises the new subcommands.
    let help = cli(&[]);
    let text = stdout(&help);
    assert!(text.contains("serve"), "{text}");
    assert!(text.contains("submit"), "{text}");
}

#[test]
fn serve_submit_round_trip_over_a_real_socket() {
    use std::io::BufRead;

    // Start the service on an ephemeral port and parse the handshake line.
    let mut server = Command::new(env!("CARGO_BIN_EXE_pythia-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut reader = std::io::BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("handshake line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected handshake {line:?}"))
        .to_string();

    let submit = |expect_cached: &str| {
        let out = cli(&[
            "submit",
            "fig01",
            "--addr",
            &addr,
            "--format",
            "csv",
            "--timeout-s",
            "300",
        ]);
        assert!(out.status.success(), "submit: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.starts_with("sweep,unit,group,"), "{text}");
        assert!(
            text.contains(&format!("cached: {expect_cached}")),
            "expected cached: {expect_cached}: {text}"
        );
        text
    };
    let strip_provenance = |text: String| {
        text.lines()
            .filter(|l| !l.starts_with("cached: "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = strip_provenance(submit("false"));
    let second = strip_provenance(submit("true"));
    assert_eq!(
        first, second,
        "cache hit serves the byte-identical rendering"
    );

    server.kill().expect("stop serve");
    server.wait().expect("reap serve");
}

#[test]
fn run_telemetry_json_writes_windows_without_perturbing_the_report() {
    let dir = std::env::temp_dir().join("pythia_cli_telemetry_smoke");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let plain = dir.join("plain.json");
    let telemetered = dir.join("telemetered.json");
    let windows = dir.join("windows.jsonl");

    let mut args: Vec<&str> = vec!["run", WORKLOAD, "pythia"];
    args.extend_from_slice(FAST);
    let plain_path = plain.to_str().expect("utf-8 path");
    let telemetered_path = telemetered.to_str().expect("utf-8 path");
    let windows_path = windows.to_str().expect("utf-8 path");

    let mut plain_args = args.clone();
    plain_args.extend_from_slice(&["--report-json", plain_path]);
    let out = cli(&plain_args);
    assert!(out.status.success(), "plain run: {}", stderr(&out));

    let mut tele_args = args;
    tele_args.extend_from_slice(&[
        "--report-json",
        telemetered_path,
        "--telemetry-json",
        windows_path,
        "--telemetry-window",
        "1000",
    ]);
    let out = cli(&tele_args);
    assert!(out.status.success(), "telemetry run: {}", stderr(&out));
    assert!(stdout(&out).contains("telemetry window(s)"));

    // The telemetry sink is strictly read-only: the report artifact is
    // byte-identical with and without it.
    let a = std::fs::read(&plain).expect("plain report");
    let b = std::fs::read(&telemetered).expect("telemetered report");
    assert_eq!(a, b, "telemetry must not perturb the report");

    // Every JSONL row parses and carries the per-window schema.
    let text = std::fs::read_to_string(&windows).expect("windows artifact");
    let rows: Vec<_> = text.lines().collect();
    assert!(rows.len() >= 4, "expected >= 4 windows, got {}", rows.len());
    for line in rows {
        let row = pythia_stats::json::parse(line).expect("row parses");
        for key in ["core", "window", "at", "instructions", "ipc", "coverage"] {
            assert!(row.get(key).is_some(), "row missing {key}: {line}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_sections_prints_the_phase_breakdown() {
    let out = bench_cli(&["bench", "--sections"], None);
    assert!(out.status.success(), "bench --sections: {}", stderr(&out));
    let text = stdout(&out);
    for section in [
        "feature_extract",
        "eq_probe",
        "argmax",
        "eq_insert",
        "sarsa",
        "cache_probe",
    ] {
        assert!(
            text.contains(section),
            "breakdown missing {section}: {text}"
        );
    }
    assert!(text.contains("| section |"), "expected the table header");
}

#[test]
fn serve_rejects_unknown_log_level() {
    let out = cli(&["serve", "--log-level", "loud", "--addr", "127.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--log-level"), "{}", stderr(&out));
}
