//! Microbenchmark report artifacts: the typed result of a `pythia-perf`
//! run, its `BENCH_micro.json` emitter/parser (the same hand-rolled
//! [`Json`] schema family the sweep engine's `BENCH_*.json` artifacts
//! use), and the baseline regression comparison consumed by
//! `pythia-cli bench --baseline` and the CI bench smoke job.

use crate::json::Json;
use crate::report::Table;

/// Statistics of one named microbenchmark: repetition timings reduced to
/// median and MAD (median absolute deviation — robust to the stray slow
/// repetition a loaded machine produces).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeasurement {
    /// Benchmark name (e.g. `"agent_step"`).
    pub name: String,
    /// Work-unit label (`"inst"`, `"ops"`, `"records"`).
    pub unit: String,
    /// Work units processed per repetition.
    pub units_per_rep: u64,
    /// Measured repetitions.
    pub reps: u32,
    /// Median wall time of one repetition, in nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the repetition times, in nanoseconds.
    pub mad_ns: f64,
}

impl BenchMeasurement {
    /// Reduces raw repetition timings (nanoseconds) to a measurement.
    ///
    /// # Panics
    ///
    /// Panics if `times_ns` is empty.
    pub fn from_times(name: &str, unit: &str, units_per_rep: u64, times_ns: &[f64]) -> Self {
        assert!(!times_ns.is_empty(), "need at least one repetition");
        let med = median(times_ns);
        let deviations: Vec<f64> = times_ns.iter().map(|t| (t - med).abs()).collect();
        Self {
            name: name.to_string(),
            unit: unit.to_string(),
            units_per_rep,
            reps: times_ns.len() as u32,
            median_ns: med,
            mad_ns: median(&deviations),
        }
    }

    /// Work units per second at the median repetition time.
    pub fn units_per_sec(&self) -> f64 {
        if self.median_ns <= 0.0 {
            0.0
        } else {
            self.units_per_rep as f64 * 1e9 / self.median_ns
        }
    }

    /// Nanoseconds per work unit at the median repetition time.
    pub fn ns_per_unit(&self) -> f64 {
        if self.units_per_rep == 0 {
            0.0
        } else {
            self.median_ns / self.units_per_rep as f64
        }
    }

    fn json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("unit", self.unit.as_str())
            .set("units_per_rep", self.units_per_rep)
            .set("reps", u64::from(self.reps))
            .set("median_ns", self.median_ns)
            .set("mad_ns", self.mad_ns)
            .set("units_per_sec", self.units_per_sec())
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("benchmark entry missing string {key:?}"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("benchmark entry missing number {key:?}"))
        };
        Ok(Self {
            name: str_field("name")?,
            unit: str_field("unit")?,
            units_per_rep: num_field("units_per_rep")? as u64,
            reps: num_field("reps")? as u32,
            median_ns: num_field("median_ns")?,
            mad_ns: num_field("mad_ns")?,
        })
    }
}

/// Host provenance stamped into a report: wall-clock numbers are
/// host-sensitive, so comparisons across different machines deserve a
/// warning. `None` on reports written before the field existed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BenchHost {
    /// Machine hostname.
    pub hostname: String,
    /// CPU feature label (e.g. `"sse4.2+avx+avx2+fma"`) — dispatch
    /// decisions like the AVX2 argmax depend on it.
    pub cpu_features: String,
}

/// A full microbenchmark report — what `BENCH_micro.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report name (`"micro"`).
    pub name: String,
    /// The `PYTHIA_BENCH_SCALE` the fixtures ran at (measurements taken at
    /// different scales are not comparable; the regression check refuses
    /// to compare across scales).
    pub scale: f64,
    /// Provenance of the machine that produced the numbers (`None` on
    /// pre-provenance baselines).
    pub host: Option<BenchHost>,
    /// One entry per benchmark, in registry order.
    pub benchmarks: Vec<BenchMeasurement>,
}

/// Regression thresholds for [`BenchReport::compare_gated`]: a default
/// slowdown percentage plus per-benchmark overrides, parsed from the
/// `--max-regress` grammar `"25"` or `"25,agent_step=15,qvstore_argmax=15"`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressGate {
    /// Threshold applied to benchmarks without an override.
    pub default_pct: f64,
    /// `(benchmark name, threshold percent)` overrides.
    pub overrides: Vec<(String, f64)>,
}

impl RegressGate {
    /// A gate with one uniform threshold.
    pub fn uniform(default_pct: f64) -> Self {
        Self {
            default_pct,
            overrides: Vec::new(),
        }
    }

    /// Parses the `--max-regress` spec: a leading default percentage,
    /// then comma-separated `name=pct` overrides.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed component.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(',');
        let default = parts.next().expect("split yields at least one part");
        let default_pct = default
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("--max-regress: bad default percentage {default:?}"))?;
        let mut overrides = Vec::new();
        for part in parts {
            let (name, pct) = part
                .split_once('=')
                .ok_or_else(|| format!("--max-regress: expected name=pct, got {part:?}"))?;
            let pct = pct
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("--max-regress: bad percentage in {part:?}"))?;
            overrides.push((name.trim().to_string(), pct));
        }
        Ok(Self {
            default_pct,
            overrides,
        })
    }

    /// The threshold applying to `name`.
    pub fn threshold(&self, name: &str) -> f64 {
        self.overrides
            .iter()
            .find(|(n, _)| n == name)
            .map_or(self.default_pct, |(_, pct)| *pct)
    }
}

/// One benchmark's regression verdict from [`BenchReport::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline units/second.
    pub baseline_units_per_sec: f64,
    /// Current units/second.
    pub current_units_per_sec: f64,
    /// Relative slowdown in percent (positive = regression).
    pub slowdown_pct: f64,
}

impl BenchReport {
    /// Serializes the report (the `BENCH_micro.json` schema).
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj()
            .set("name", self.name.as_str())
            .set("scale", self.scale);
        if let Some(host) = &self.host {
            out = out.set(
                "host",
                Json::obj()
                    .set("hostname", host.hostname.as_str())
                    .set("cpu_features", host.cpu_features.as_str()),
            );
        }
        out.set(
            "benchmarks",
            Json::Arr(self.benchmarks.iter().map(BenchMeasurement::json).collect()),
        )
    }

    /// Parses a report emitted by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("report missing string \"name\"")?
            .to_string();
        let scale = v
            .get("scale")
            .and_then(Json::as_f64)
            .ok_or("report missing number \"scale\"")?;
        // Optional: reports written before host provenance existed parse
        // to `host: None`.
        let host = v.get("host").map(|h| BenchHost {
            hostname: h
                .get("hostname")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            cpu_features: h
                .get("cpu_features")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        });
        let benchmarks = v
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("report missing array \"benchmarks\"")?
            .iter()
            .map(BenchMeasurement::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            name,
            scale,
            host,
            benchmarks,
        })
    }

    /// Renders the human-readable results table.
    pub fn to_markdown(&self) -> String {
        let mut t = Table::new(&["benchmark", "unit", "median", "mad", "throughput"]);
        for b in &self.benchmarks {
            t.row(&[
                b.name.clone(),
                b.unit.clone(),
                format_ns(b.median_ns),
                format_ns(b.mad_ns),
                format!("{:.2} M{}/s", b.units_per_sec() / 1e6, b.unit),
            ]);
        }
        t.to_markdown()
    }

    /// Compares against a baseline report: every benchmark present in both
    /// whose throughput dropped more than `max_regress_pct` percent is
    /// returned (empty = no regressions). Benchmarks only present on one
    /// side are ignored — adding or retiring benchmarks is not a
    /// regression.
    ///
    /// # Errors
    ///
    /// Returns an error if the two reports ran at different
    /// `PYTHIA_BENCH_SCALE`s (their numbers are not comparable).
    pub fn compare(
        &self,
        baseline: &Self,
        max_regress_pct: f64,
    ) -> Result<Vec<Regression>, String> {
        self.compare_gated(baseline, &RegressGate::uniform(max_regress_pct))
    }

    /// Like [`compare`](BenchReport::compare), but with per-benchmark
    /// thresholds: each benchmark is judged against
    /// [`RegressGate::threshold`] for its name, so CI can hold the hot
    /// kernels (`agent_step`, `qvstore_argmax`) to a tighter budget than
    /// the noisier end-to-end fixtures.
    ///
    /// # Errors
    ///
    /// Returns an error if the two reports ran at different
    /// `PYTHIA_BENCH_SCALE`s (their numbers are not comparable).
    pub fn compare_gated(
        &self,
        baseline: &Self,
        gate: &RegressGate,
    ) -> Result<Vec<Regression>, String> {
        self.check_same_scale(baseline)?;
        let mut out = Vec::new();
        for b in &self.benchmarks {
            let Some(base) = baseline.benchmarks.iter().find(|x| x.name == b.name) else {
                continue;
            };
            let (cur, was) = (b.units_per_sec(), base.units_per_sec());
            if was <= 0.0 {
                continue;
            }
            let slowdown_pct = (1.0 - cur / was) * 100.0;
            if slowdown_pct > gate.threshold(&b.name) {
                out.push(Regression {
                    name: b.name.clone(),
                    baseline_units_per_sec: was,
                    current_units_per_sec: cur,
                    slowdown_pct,
                });
            }
        }
        Ok(out)
    }

    /// Renders the per-benchmark delta table of `self` (the "new" report)
    /// against `baseline` (the "old" one) — median, MAD, and the
    /// throughput ratio new/old, where `> 1.00x` means faster. Benchmarks
    /// present on only one side are listed with `-` on the missing side so
    /// additions and retirements stay visible.
    ///
    /// # Errors
    ///
    /// Returns an error if the two reports ran at different
    /// `PYTHIA_BENCH_SCALE`s (their numbers are not comparable).
    pub fn compare_table(&self, baseline: &Self) -> Result<String, String> {
        self.check_same_scale(baseline)?;
        let mut t = Table::new(&[
            "benchmark",
            "median old",
            "median new",
            "mad old",
            "mad new",
            "ratio",
        ]);
        let missing = || "-".to_string();
        for base in &baseline.benchmarks {
            let row = match self.benchmarks.iter().find(|x| x.name == base.name) {
                Some(cur) => {
                    let (old, new) = (base.units_per_sec(), cur.units_per_sec());
                    let ratio = if old > 0.0 {
                        format!("{:.2}x", new / old)
                    } else {
                        missing()
                    };
                    [
                        base.name.clone(),
                        format_ns(base.median_ns),
                        format_ns(cur.median_ns),
                        format_ns(base.mad_ns),
                        format_ns(cur.mad_ns),
                        ratio,
                    ]
                }
                None => [
                    base.name.clone(),
                    format_ns(base.median_ns),
                    missing(),
                    format_ns(base.mad_ns),
                    missing(),
                    missing(),
                ],
            };
            t.row(&row);
        }
        for cur in &self.benchmarks {
            if baseline.benchmarks.iter().any(|x| x.name == cur.name) {
                continue;
            }
            t.row(&[
                cur.name.clone(),
                missing(),
                format_ns(cur.median_ns),
                missing(),
                format_ns(cur.mad_ns),
                missing(),
            ]);
        }
        Ok(t.to_markdown())
    }

    /// A warning message when the two reports carry host provenance and
    /// it differs — wall-clock throughput is not comparable across
    /// machines, so `bench --compare` and `--baseline` print this before
    /// the verdict. `None` when the hosts match or either side predates
    /// provenance stamping.
    pub fn host_mismatch(&self, baseline: &Self) -> Option<String> {
        let (cur, base) = (self.host.as_ref()?, baseline.host.as_ref()?);
        if cur == base {
            return None;
        }
        Some(format!(
            "host mismatch: current report from {} [{}] but baseline from {} [{}]; \
             wall-clock numbers are not comparable across hosts",
            cur.hostname, cur.cpu_features, base.hostname, base.cpu_features
        ))
    }

    fn check_same_scale(&self, baseline: &Self) -> Result<(), String> {
        if (self.scale - baseline.scale).abs() > 1e-12 {
            return Err(format!(
                "scale mismatch: current report ran at {} but baseline at {}",
                self.scale, baseline.scale
            ));
        }
        Ok(())
    }
}

/// Median of a non-empty slice.
fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

/// Human-scale duration formatting for the markdown table.
fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(name: &str, median_ns: f64) -> BenchMeasurement {
        BenchMeasurement::from_times(name, "ops", 1_000, &[median_ns, median_ns * 1.1])
    }

    #[test]
    fn from_times_reduces_to_median_and_mad() {
        let m = BenchMeasurement::from_times("x", "ops", 100, &[10.0, 30.0, 20.0]);
        assert_eq!(m.median_ns, 20.0);
        assert_eq!(m.mad_ns, 10.0);
        assert_eq!(m.reps, 3);
        assert!((m.units_per_sec() - 100.0 * 1e9 / 20.0).abs() < 1e-6);
        assert!((m.ns_per_unit() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let report = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 0.5,
            benchmarks: vec![measurement("a", 500.0), measurement("b", 900.0)],
        };
        let text = report.to_json().render_pretty();
        let parsed =
            BenchReport::from_json(&crate::json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(parsed, report);
    }

    #[test]
    fn host_provenance_roundtrips_and_detects_mismatch() {
        let stamped = |hostname: &str| BenchReport {
            name: "micro".into(),
            scale: 1.0,
            host: Some(BenchHost {
                hostname: hostname.into(),
                cpu_features: "avx2+fma".into(),
            }),
            benchmarks: vec![measurement("a", 100.0)],
        };
        let report = stamped("ci-runner");
        let text = report.to_json().render_pretty();
        let parsed =
            BenchReport::from_json(&crate::json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(parsed, report);

        // Same host: no warning. Different host: a warning naming both.
        assert!(report.host_mismatch(&stamped("ci-runner")).is_none());
        let warning = report
            .host_mismatch(&stamped("laptop"))
            .expect("hosts differ");
        assert!(warning.contains("ci-runner") && warning.contains("laptop"));

        // Pre-provenance baselines never warn.
        let legacy = BenchReport {
            host: None,
            ..stamped("ci-runner")
        };
        assert!(report.host_mismatch(&legacy).is_none());
        assert!(legacy.host_mismatch(&report).is_none());
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            benchmarks: vec![measurement("a", 100.0), measurement("b", 100.0)],
        };
        let current = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            // `a` got 10% slower (under threshold), `b` 2x slower.
            benchmarks: vec![measurement("a", 110.0), measurement("b", 200.0)],
        };
        let regressions = current.compare(&base, 25.0).expect("comparable");
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "b");
        assert!(regressions[0].slowdown_pct > 49.0);
    }

    #[test]
    fn gate_parses_default_and_overrides() {
        let gate = RegressGate::parse("25,agent_step=15, qvstore_argmax = 10").expect("parses");
        assert_eq!(gate.default_pct, 25.0);
        assert_eq!(gate.threshold("agent_step"), 15.0);
        assert_eq!(gate.threshold("qvstore_argmax"), 10.0);
        assert_eq!(gate.threshold("e2e_single_core"), 25.0);

        assert_eq!(
            RegressGate::parse("40").expect("parses"),
            RegressGate::uniform(40.0)
        );
        assert!(RegressGate::parse("nope").is_err());
        assert!(RegressGate::parse("25,agent_step").is_err());
        assert!(RegressGate::parse("25,agent_step=fast").is_err());
    }

    #[test]
    fn gated_compare_applies_per_benchmark_thresholds() {
        let base = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            benchmarks: vec![measurement("agent_step", 100.0), measurement("e2e", 100.0)],
        };
        let current = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            // Both 20% slower: over agent_step's 15% override, under the
            // 25% default that still covers e2e.
            benchmarks: vec![measurement("agent_step", 125.0), measurement("e2e", 125.0)],
        };
        let gate = RegressGate::parse("25,agent_step=15").expect("parses");
        let regressions = current.compare_gated(&base, &gate).expect("comparable");
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "agent_step");
    }

    #[test]
    fn compare_table_shows_deltas_and_one_sided_benchmarks() {
        let base = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            benchmarks: vec![measurement("a", 200.0), measurement("retired", 50.0)],
        };
        let current = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            benchmarks: vec![measurement("a", 100.0), measurement("added", 70.0)],
        };
        let table = current.compare_table(&base).expect("comparable");
        // `a` doubled in throughput (200 ns -> 100 ns median).
        assert!(table.contains("2.00x"), "ratio missing from:\n{table}");
        assert!(table.contains("retired"));
        assert!(table.contains("added"));
        assert!(table.contains('-'), "one-sided rows use - placeholders");

        let mismatched = BenchReport {
            scale: 0.5,
            ..current.clone()
        };
        assert!(mismatched.compare_table(&base).is_err());
    }

    #[test]
    fn compare_rejects_scale_mismatch() {
        let base = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            benchmarks: vec![],
        };
        let current = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 0.1,
            benchmarks: vec![],
        };
        assert!(current.compare(&base, 25.0).is_err());
    }

    #[test]
    fn markdown_lists_every_benchmark() {
        let report = BenchReport {
            name: "micro".into(),
            host: None,
            scale: 1.0,
            benchmarks: vec![BenchMeasurement::from_times(
                "agent_step",
                "ops",
                10,
                &[123.0],
            )],
        };
        let md = report.to_markdown();
        assert!(md.contains("agent_step"));
        assert!(md.contains("123 ns"));
    }
}
