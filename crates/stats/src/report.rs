//! Plain-text rendering: markdown tables and ASCII bar series, used by the
//! experiment binaries to print output shaped like the paper's tables and
//! figures.

/// A simple column-aligned table with markdown output.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable items.
    pub fn push_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a column-aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&dashes, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Serializes as a JSON object `{"headers": [...], "rows": [[...]]}`
    /// (cells stay strings; the sweep engine emits typed cells separately).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let headers: Vec<Json> = self.headers.iter().map(|h| h.as_str().into()).collect();
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| Json::Arr(r.iter().map(|c| c.as_str().into()).collect()))
            .collect();
        Json::obj()
            .set("headers", Json::Arr(headers))
            .set("rows", Json::Arr(rows))
    }

    /// Renders as CSV (no quoting; callers keep cells comma-free).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a labelled horizontal ASCII bar chart (one bar per value),
/// scaled to `width` characters for the maximum value — the harness's
/// substitute for the paper's figure panels.
pub fn ascii_series(title: &str, labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "labels/values length mismatch");
    let mut out = format!("## {title}\n");
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    let min = values.iter().cloned().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-9);
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    for (l, v) in labels.iter().zip(values) {
        let filled = (((v - min) / span) * width as f64).round() as usize;
        out.push_str(&format!(
            "{l:<label_w$} | {:<width$} {v:.4}\n",
            "#".repeat(filled.min(width))
        ));
    }
    out
}

/// Formats a ratio as a signed percentage (e.g. `+3.4%`).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Formats a fraction as an unsigned percentage (e.g. `71.2%`).
pub fn frac_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_aligns() {
        let mut t = Table::new(&["name", "speedup"]);
        t.row(&["spp".into(), "1.18".into()]);
        t.row(&["pythia-long-name".into(), "1.22".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        // All lines equal width (aligned).
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn json_rendering_round_trips() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "x".into()]);
        let rendered = t.to_json().render();
        let parsed = crate::json::parse(&rendered).expect("valid json");
        let headers = parsed.get("headers").and_then(|h| h.as_arr()).unwrap();
        assert_eq!(headers[0].as_str(), Some("a"));
        let rows = parsed.get("rows").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("x"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn ascii_series_scales_bars() {
        let s = ascii_series("test", &["a".into(), "b".into()], &[1.0, 2.0], 10);
        assert!(s.contains("##########"), "max value fills the width:\n{s}");
        assert!(s.contains("2.0000"));
    }

    #[test]
    fn percentage_formatting() {
        assert_eq!(pct(1.034), "+3.4%");
        assert_eq!(pct(0.98), "-2.0%");
        assert_eq!(frac_pct(0.712), "71.2%");
    }

    #[test]
    fn push_display_works() {
        let mut t = Table::new(&["x", "y"]);
        t.push_display(&[1.5, 2.5]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
