//! The paper's evaluation metrics (Appendix A.6):
//!
//! ```text
//! Perf_X          = IPC_X / IPC_nopref
//! Coverage_X      = (LLC_load_miss_nopref − LLC_load_miss_X) / LLC_load_miss_nopref
//! Overprediction_X = (LLC_read_miss_X − LLC_read_miss_nopref) / LLC_read_miss_nopref
//! ```
//!
//! where "LLC read misses" counts every read reaching DRAM — demand misses
//! *plus* prefetch fills, which is how overpredicting prefetchers show up.

use serde::{Deserialize, Serialize};

use pythia_sim::stats::SimReport;

/// Derived metrics comparing a prefetched run against the no-prefetching
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Geometric-mean IPC speedup over the baseline.
    pub speedup: f64,
    /// Prefetch coverage in `[..1]` (can be negative if misses increased).
    pub coverage: f64,
    /// Overprediction: extra DRAM reads relative to baseline LLC misses.
    pub overprediction: f64,
    /// Geometric-mean IPC of the prefetched run.
    pub ipc: f64,
    /// Baseline LLC demand-load MPKI.
    pub baseline_mpki: f64,
    /// Prefetcher accuracy (useful / resolved) from cache-level accounting.
    pub accuracy: f64,
}

/// Computes the Appendix A.6 metrics.
///
/// # Panics
///
/// Panics if the baseline report saw no LLC load misses (metrics would be
/// undefined; the paper filters workloads below 3 MPKI for the same reason).
pub fn compare(baseline: &SimReport, with: &SimReport) -> Metrics {
    let base_misses = baseline.llc.demand_load_misses;
    assert!(
        base_misses > 0,
        "baseline saw no LLC load misses; not a memory-bound workload"
    );
    let coverage = (base_misses as f64 - with.llc.demand_load_misses as f64) / base_misses as f64;
    let base_reads = baseline.dram.total_reads();
    let with_reads = with.dram.total_reads();
    let overprediction = if base_reads == 0 {
        0.0
    } else {
        (with_reads as f64 - base_reads as f64) / base_reads as f64
    };
    let useful: u64 =
        with.l2.iter().map(|c| c.useful_prefetches).sum::<u64>() + with.llc.useful_prefetches;
    let useless: u64 =
        with.l2.iter().map(|c| c.useless_prefetches).sum::<u64>() + with.llc.useless_prefetches;
    let accuracy = if useful + useless == 0 {
        0.0
    } else {
        useful as f64 / (useful + useless) as f64
    };
    Metrics {
        speedup: speedup(baseline, with),
        coverage,
        overprediction,
        ipc: with.geomean_ipc(),
        baseline_mpki: baseline.llc_mpki(),
        accuracy,
    }
}

/// Geometric-mean IPC speedup of `with` over `baseline`.
pub fn speedup(baseline: &SimReport, with: &SimReport) -> f64 {
    let b = baseline.geomean_ipc();
    if b <= 0.0 {
        0.0
    } else {
        with.geomean_ipc() / b
    }
}

/// Geometric mean of a slice of positive values (zero-length → 1.0, the
/// neutral speedup).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::stats::{CacheStats, CoreStats, DramStats};

    fn report(ipc_num: u64, ipc_den: u64, llc_misses: u64, dram_reads: u64) -> SimReport {
        SimReport {
            cores: vec![CoreStats {
                instructions: ipc_num,
                cycles: ipc_den,
                ..Default::default()
            }],
            l1d: vec![CacheStats::default()],
            l2: vec![CacheStats::default()],
            llc: CacheStats {
                demand_load_misses: llc_misses,
                demand_loads: llc_misses,
                ..Default::default()
            },
            dram: DramStats {
                demand_reads: dram_reads,
                ..Default::default()
            },
            prefetchers: vec![],
        }
    }

    #[test]
    fn coverage_formula() {
        let base = report(1000, 1000, 1000, 1000);
        let with = report(1200, 1000, 300, 1100);
        let m = compare(&base, &with);
        assert!((m.coverage - 0.7).abs() < 1e-12);
        assert!((m.overprediction - 0.1).abs() < 1e-12);
        assert!((m.speedup - 1.2).abs() < 1e-12);
    }

    #[test]
    fn negative_coverage_when_misses_increase() {
        let base = report(1000, 1000, 1000, 1000);
        let with = report(900, 1000, 1500, 2000);
        let m = compare(&base, &with);
        assert!(m.coverage < 0.0);
        assert!((m.overprediction - 1.0).abs() < 1e-12);
        assert!(m.speedup < 1.0);
    }

    #[test]
    #[should_panic(expected = "no LLC load misses")]
    fn zero_baseline_misses_rejected() {
        let base = report(1000, 1000, 0, 0);
        let with = report(1000, 1000, 0, 0);
        let _ = compare(&base, &with);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_from_cache_counters() {
        let base = report(1000, 1000, 100, 100);
        let mut with = report(1000, 1000, 50, 120);
        with.l2[0].useful_prefetches = 30;
        with.l2[0].useless_prefetches = 10;
        let m = compare(&base, &with);
        assert!((m.accuracy - 0.75).abs() < 1e-12);
    }
}
