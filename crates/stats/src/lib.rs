//! # pythia-stats
//!
//! Metrics and reporting for the Pythia reproduction: the performance /
//! coverage / overprediction formulas of Appendix A.6, aggregation helpers
//! (geometric means, per-suite grouping), and plain-text table / series
//! renderers used by the experiment harness to print paper-shaped output.

pub mod bench;
pub mod json;
pub mod metrics;
pub mod report;

pub use bench::{BenchMeasurement, BenchReport, RegressGate};
pub use json::Json;
pub use metrics::{geomean, speedup, Metrics};
pub use report::{ascii_series, Table};
