//! A minimal JSON value type with a renderer and a strict parser.
//!
//! The workspace's `serde` is an offline no-op shim (see `vendor/serde`),
//! so machine-readable output is produced through this hand-rolled value
//! type instead of `serde_json`. The surface is deliberately small: build a
//! [`Json`] tree, [`Json::render`] it, and [`parse`] it back (the sweep
//! engine's round-trip tests and the CI smoke rely on the parser).

use pythia_sim::stats::SimReport;

use crate::metrics::Metrics;

/// A JSON value. Object keys keep insertion order so rendered output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Inserts a key into an object (panics on non-objects — builder misuse
    /// is a programming error, not a data error).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// within `f64`'s exact range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

/// Renders an `f64` so that parsing the output recovers the exact value:
/// integers in `i64` range print without a fraction, everything else uses
/// Rust's shortest round-trippable representation.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or of
/// trailing non-whitespace after the top-level value.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let high = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = match high {
                            // High surrogate: a low surrogate must follow
                            // (escaped non-BMP characters come in pairs).
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err(format!(
                                        "lone high surrogate \\u{high:04x} at byte {}",
                                        *pos
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "expected low surrogate after \\u{high:04x}, got \\u{low:04x}"
                                    ));
                                }
                                *pos += 6;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{high:04x} at byte {}",
                                    *pos
                                ))
                            }
                            bmp => bmp,
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do byte-wise on char boundaries).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Serializes the Appendix A.6 [`Metrics`] as a JSON object.
pub fn metrics_json(m: &Metrics) -> Json {
    Json::obj()
        .set("speedup", m.speedup)
        .set("coverage", m.coverage)
        .set("overprediction", m.overprediction)
        .set("ipc", m.ipc)
        .set("baseline_mpki", m.baseline_mpki)
        .set("accuracy", m.accuracy)
}

/// Serializes a full [`SimReport`] as a JSON object (per-core IPC, cache
/// miss counters, DRAM traffic and prefetcher counters).
pub fn sim_report_json(r: &SimReport) -> Json {
    let cores: Vec<Json> = r
        .cores
        .iter()
        .map(|c| {
            Json::obj()
                .set("instructions", c.instructions)
                .set("cycles", c.cycles)
                .set("ipc", c.ipc())
        })
        .collect();
    let cache = |c: &pythia_sim::stats::CacheStats| {
        Json::obj()
            .set("demand_loads", c.demand_loads)
            .set("demand_load_misses", c.demand_load_misses)
            .set("prefetch_fills", c.prefetch_fills)
            .set("useful_prefetches", c.useful_prefetches)
            .set("useless_prefetches", c.useless_prefetches)
    };
    Json::obj()
        .set("geomean_ipc", r.geomean_ipc())
        .set("llc_mpki", r.llc_mpki())
        .set("prefetches_issued", r.prefetches_issued())
        .set("cores", Json::Arr(cores))
        .set("l2", Json::Arr(r.l2.iter().map(cache).collect()))
        .set("llc", cache(&r.llc))
        .set(
            "dram",
            Json::obj()
                .set("demand_reads", r.dram.demand_reads)
                .set("prefetch_reads", r.dram.prefetch_reads)
                .set("writes", r.dram.writes)
                .set(
                    "bw_bucket_windows",
                    Json::Arr(
                        r.dram
                            .bw_bucket_windows
                            .iter()
                            .map(|w| (*w).into())
                            .collect(),
                    ),
                ),
        )
}

/// Lossless `u64` for the wire codec: numbers within `f64`'s exact
/// integer range ride as JSON numbers, anything larger as a decimal
/// string (the same convention as the campaign spec codec).
fn wire_u64(v: u64) -> Json {
    if v <= 9_007_199_254_740_992 {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

fn wire_u64_of(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        Some(Json::Str(s)) => s
            .parse()
            .map_err(|_| format!("sim report: bad u64 string for {key:?}")),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("sim report: bad u64 for {key:?}")),
        None => Err(format!("sim report: missing {key:?}")),
    }
}

fn cache_wire_json(c: &pythia_sim::stats::CacheStats) -> Json {
    Json::obj()
        .set("demand_loads", wire_u64(c.demand_loads))
        .set("demand_load_hits", wire_u64(c.demand_load_hits))
        .set("demand_load_misses", wire_u64(c.demand_load_misses))
        .set("demand_stores", wire_u64(c.demand_stores))
        .set("demand_store_hits", wire_u64(c.demand_store_hits))
        .set("demand_store_misses", wire_u64(c.demand_store_misses))
        .set("prefetch_fills", wire_u64(c.prefetch_fills))
        .set("prefetch_redundant", wire_u64(c.prefetch_redundant))
        .set("useful_prefetches", wire_u64(c.useful_prefetches))
        .set("useless_prefetches", wire_u64(c.useless_prefetches))
        .set("late_prefetch_hits", wire_u64(c.late_prefetch_hits))
        .set("mshr_stall_cycles", wire_u64(c.mshr_stall_cycles))
        .set("mshr_stalls", wire_u64(c.mshr_stalls))
        .set("dirty_evictions", wire_u64(c.dirty_evictions))
        .set("evictions", wire_u64(c.evictions))
}

fn cache_from_wire(j: &Json) -> Result<pythia_sim::stats::CacheStats, String> {
    Ok(pythia_sim::stats::CacheStats {
        demand_loads: wire_u64_of(j, "demand_loads")?,
        demand_load_hits: wire_u64_of(j, "demand_load_hits")?,
        demand_load_misses: wire_u64_of(j, "demand_load_misses")?,
        demand_stores: wire_u64_of(j, "demand_stores")?,
        demand_store_hits: wire_u64_of(j, "demand_store_hits")?,
        demand_store_misses: wire_u64_of(j, "demand_store_misses")?,
        prefetch_fills: wire_u64_of(j, "prefetch_fills")?,
        prefetch_redundant: wire_u64_of(j, "prefetch_redundant")?,
        useful_prefetches: wire_u64_of(j, "useful_prefetches")?,
        useless_prefetches: wire_u64_of(j, "useless_prefetches")?,
        late_prefetch_hits: wire_u64_of(j, "late_prefetch_hits")?,
        mshr_stall_cycles: wire_u64_of(j, "mshr_stall_cycles")?,
        mshr_stalls: wire_u64_of(j, "mshr_stalls")?,
        dirty_evictions: wire_u64_of(j, "dirty_evictions")?,
        evictions: wire_u64_of(j, "evictions")?,
    })
}

/// Serializes a full [`SimReport`] **losslessly** — every counter of
/// every substructure, so [`sim_report_from_wire`] reconstructs a report
/// equal to the original. This is the journal/wire form; the
/// human-facing [`sim_report_json`] artifact stays a lossy summary.
pub fn sim_report_wire_json(r: &SimReport) -> Json {
    let core = |c: &pythia_sim::stats::CoreStats| {
        Json::obj()
            .set("instructions", wire_u64(c.instructions))
            .set("cycles", wire_u64(c.cycles))
            .set("loads", wire_u64(c.loads))
            .set("stores", wire_u64(c.stores))
            .set("branches", wire_u64(c.branches))
            .set("branch_mispredicts", wire_u64(c.branch_mispredicts))
    };
    let pf = |p: &pythia_sim::stats::PrefetcherStats| {
        Json::obj()
            .set("issued", wire_u64(p.issued))
            .set("redundant", wire_u64(p.redundant))
            .set("useful", wire_u64(p.useful))
            .set("useless", wire_u64(p.useless))
    };
    Json::obj()
        .set("cores", Json::Arr(r.cores.iter().map(core).collect()))
        .set(
            "l1d",
            Json::Arr(r.l1d.iter().map(cache_wire_json).collect()),
        )
        .set("l2", Json::Arr(r.l2.iter().map(cache_wire_json).collect()))
        .set("llc", cache_wire_json(&r.llc))
        .set(
            "dram",
            Json::obj()
                .set("demand_reads", wire_u64(r.dram.demand_reads))
                .set("prefetch_reads", wire_u64(r.dram.prefetch_reads))
                .set("writes", wire_u64(r.dram.writes))
                .set("row_hits", wire_u64(r.dram.row_hits))
                .set("row_misses", wire_u64(r.dram.row_misses))
                .set("bus_busy_cycles", wire_u64(r.dram.bus_busy_cycles))
                .set(
                    "bw_bucket_windows",
                    Json::Arr(
                        r.dram
                            .bw_bucket_windows
                            .iter()
                            .map(|w| wire_u64(*w))
                            .collect(),
                    ),
                ),
        )
        .set(
            "prefetchers",
            Json::Arr(r.prefetchers.iter().map(pf).collect()),
        )
}

/// Decodes the lossless wire form produced by [`sim_report_wire_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or ill-typed key.
pub fn sim_report_from_wire(j: &Json) -> Result<SimReport, String> {
    let arr_of = |key: &str| -> Result<&[Json], String> {
        j.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("sim report: missing array {key:?}"))
    };
    let cores = arr_of("cores")?
        .iter()
        .map(|c| {
            Ok(pythia_sim::stats::CoreStats {
                instructions: wire_u64_of(c, "instructions")?,
                cycles: wire_u64_of(c, "cycles")?,
                loads: wire_u64_of(c, "loads")?,
                stores: wire_u64_of(c, "stores")?,
                branches: wire_u64_of(c, "branches")?,
                branch_mispredicts: wire_u64_of(c, "branch_mispredicts")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let l1d = arr_of("l1d")?
        .iter()
        .map(cache_from_wire)
        .collect::<Result<Vec<_>, String>>()?;
    let l2 = arr_of("l2")?
        .iter()
        .map(cache_from_wire)
        .collect::<Result<Vec<_>, String>>()?;
    let llc = cache_from_wire(j.get("llc").ok_or("sim report: missing llc")?)?;
    let dram_j = j.get("dram").ok_or("sim report: missing dram")?;
    let buckets = dram_j
        .get("bw_bucket_windows")
        .and_then(Json::as_arr)
        .ok_or("sim report: missing bw_bucket_windows")?;
    if buckets.len() != 4 {
        return Err("sim report: bw_bucket_windows must have 4 entries".into());
    }
    let mut bw_bucket_windows = [0u64; 4];
    for (slot, b) in bw_bucket_windows.iter_mut().zip(buckets) {
        *slot = match b {
            Json::Str(s) => s
                .parse()
                .map_err(|_| "sim report: bad bucket string".to_string())?,
            v => v.as_u64().ok_or("sim report: bad bucket value")?,
        };
    }
    let dram = pythia_sim::stats::DramStats {
        demand_reads: wire_u64_of(dram_j, "demand_reads")?,
        prefetch_reads: wire_u64_of(dram_j, "prefetch_reads")?,
        writes: wire_u64_of(dram_j, "writes")?,
        row_hits: wire_u64_of(dram_j, "row_hits")?,
        row_misses: wire_u64_of(dram_j, "row_misses")?,
        bus_busy_cycles: wire_u64_of(dram_j, "bus_busy_cycles")?,
        bw_bucket_windows,
    };
    let prefetchers = arr_of("prefetchers")?
        .iter()
        .map(|p| {
            Ok(pythia_sim::stats::PrefetcherStats {
                issued: wire_u64_of(p, "issued")?,
                redundant: wire_u64_of(p, "redundant")?,
                useful: wire_u64_of(p, "useful")?,
                useless: wire_u64_of(p, "useless")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SimReport {
        cores,
        l1d,
        l2,
        llc,
        dram,
        prefetchers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_report_wire_codec_round_trips_every_field() {
        use pythia_sim::stats::{CacheStats, CoreStats, DramStats, PrefetcherStats};
        // Distinct values everywhere so a swapped or dropped field fails,
        // plus one counter beyond f64's exact integer range.
        let mut n = 1u64;
        let mut next = || {
            n += 1;
            n
        };
        let cache = |next: &mut dyn FnMut() -> u64| CacheStats {
            demand_loads: next(),
            demand_load_hits: next(),
            demand_load_misses: next(),
            demand_stores: next(),
            demand_store_hits: next(),
            demand_store_misses: next(),
            prefetch_fills: next(),
            prefetch_redundant: next(),
            useful_prefetches: next(),
            useless_prefetches: next(),
            late_prefetch_hits: next(),
            mshr_stall_cycles: next(),
            mshr_stalls: next(),
            dirty_evictions: next(),
            evictions: next(),
        };
        let report = SimReport {
            cores: vec![
                CoreStats {
                    instructions: next(),
                    cycles: next(),
                    loads: next(),
                    stores: next(),
                    branches: next(),
                    branch_mispredicts: next(),
                },
                CoreStats {
                    instructions: u64::MAX,
                    cycles: (1 << 53) + 1,
                    ..Default::default()
                },
            ],
            l1d: vec![cache(&mut next), cache(&mut next)],
            l2: vec![cache(&mut next)],
            llc: cache(&mut next),
            dram: DramStats {
                demand_reads: next(),
                prefetch_reads: next(),
                writes: next(),
                row_hits: next(),
                row_misses: next(),
                bus_busy_cycles: next(),
                bw_bucket_windows: [next(), next(), next(), u64::MAX - 1],
            },
            prefetchers: vec![PrefetcherStats {
                issued: next(),
                redundant: next(),
                useful: next(),
                useless: next(),
            }],
        };
        let rendered = sim_report_wire_json(&report).render();
        let parsed = parse(&rendered).expect("valid json");
        let back = sim_report_from_wire(&parsed).expect("decodes");
        assert_eq!(back, report, "wire codec is lossless");
    }

    #[test]
    fn renders_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Num(3.0), "3"),
            (Json::Num(-1.25), "-1.25"),
            (
                Json::Str("hi \"there\"\n".into()),
                "\"hi \\\"there\\\"\\n\"",
            ),
        ] {
            assert_eq!(v.render(), s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::obj()
            .set("name", "fig09")
            .set("cells", Json::Arr(vec![Json::Num(1.5), Json::Null]))
            .set("meta", Json::obj().set("threads", 4u64));
        let compact = v.render();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, 1.0, -7.0, 1.234567, 1e-9, 6.02e23, f64::MAX] {
            let rendered = render_number(n);
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back, n, "{rendered}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"π\"").unwrap(), Json::Str("π".into()));
        // Non-BMP characters arrive as surrogate pairs.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(
            parse("\"x\\uD834\\uDD1Ey\"").unwrap(),
            Json::Str("x\u{1D11E}y".into())
        );
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for bad in [
            "\"\\ud83d\"",        // lone high
            "\"\\ude00\"",        // lone low
            "\"\\ud83d\\u0041\"", // high followed by non-surrogate
            "\"\\ud83dx\"",       // high followed by raw text
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse("{\"a\": 1, \"b\": [\"x\"]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("b").unwrap().as_str(), None);
        let fields = v.as_obj().expect("object");
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "a");
        assert_eq!(v.get("b").unwrap().as_obj(), None);
    }
}
