//! A minimal JSON value type with a renderer and a strict parser.
//!
//! The workspace's `serde` is an offline no-op shim (see `vendor/serde`),
//! so machine-readable output is produced through this hand-rolled value
//! type instead of `serde_json`. The surface is deliberately small: build a
//! [`Json`] tree, [`Json::render`] it, and [`parse`] it back (the sweep
//! engine's round-trip tests and the CI smoke rely on the parser).

use pythia_sim::stats::SimReport;

use crate::metrics::Metrics;

/// A JSON value. Object keys keep insertion order so rendered output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Inserts a key into an object (panics on non-objects — builder misuse
    /// is a programming error, not a data error).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// within `f64`'s exact range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

/// Renders an `f64` so that parsing the output recovers the exact value:
/// integers in `i64` range print without a fraction, everything else uses
/// Rust's shortest round-trippable representation.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or of
/// trailing non-whitespace after the top-level value.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let high = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = match high {
                            // High surrogate: a low surrogate must follow
                            // (escaped non-BMP characters come in pairs).
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err(format!(
                                        "lone high surrogate \\u{high:04x} at byte {}",
                                        *pos
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "expected low surrogate after \\u{high:04x}, got \\u{low:04x}"
                                    ));
                                }
                                *pos += 6;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{high:04x} at byte {}",
                                    *pos
                                ))
                            }
                            bmp => bmp,
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do byte-wise on char boundaries).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Serializes the Appendix A.6 [`Metrics`] as a JSON object.
pub fn metrics_json(m: &Metrics) -> Json {
    Json::obj()
        .set("speedup", m.speedup)
        .set("coverage", m.coverage)
        .set("overprediction", m.overprediction)
        .set("ipc", m.ipc)
        .set("baseline_mpki", m.baseline_mpki)
        .set("accuracy", m.accuracy)
}

/// Serializes a full [`SimReport`] as a JSON object (per-core IPC, cache
/// miss counters, DRAM traffic and prefetcher counters).
pub fn sim_report_json(r: &SimReport) -> Json {
    let cores: Vec<Json> = r
        .cores
        .iter()
        .map(|c| {
            Json::obj()
                .set("instructions", c.instructions)
                .set("cycles", c.cycles)
                .set("ipc", c.ipc())
        })
        .collect();
    let cache = |c: &pythia_sim::stats::CacheStats| {
        Json::obj()
            .set("demand_loads", c.demand_loads)
            .set("demand_load_misses", c.demand_load_misses)
            .set("prefetch_fills", c.prefetch_fills)
            .set("useful_prefetches", c.useful_prefetches)
            .set("useless_prefetches", c.useless_prefetches)
    };
    Json::obj()
        .set("geomean_ipc", r.geomean_ipc())
        .set("llc_mpki", r.llc_mpki())
        .set("prefetches_issued", r.prefetches_issued())
        .set("cores", Json::Arr(cores))
        .set("l2", Json::Arr(r.l2.iter().map(cache).collect()))
        .set("llc", cache(&r.llc))
        .set(
            "dram",
            Json::obj()
                .set("demand_reads", r.dram.demand_reads)
                .set("prefetch_reads", r.dram.prefetch_reads)
                .set("writes", r.dram.writes)
                .set(
                    "bw_bucket_windows",
                    Json::Arr(
                        r.dram
                            .bw_bucket_windows
                            .iter()
                            .map(|w| (*w).into())
                            .collect(),
                    ),
                ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Num(3.0), "3"),
            (Json::Num(-1.25), "-1.25"),
            (
                Json::Str("hi \"there\"\n".into()),
                "\"hi \\\"there\\\"\\n\"",
            ),
        ] {
            assert_eq!(v.render(), s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::obj()
            .set("name", "fig09")
            .set("cells", Json::Arr(vec![Json::Num(1.5), Json::Null]))
            .set("meta", Json::obj().set("threads", 4u64));
        let compact = v.render();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, 1.0, -7.0, 1.234567, 1e-9, 6.02e23, f64::MAX] {
            let rendered = render_number(n);
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back, n, "{rendered}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"π\"").unwrap(), Json::Str("π".into()));
        // Non-BMP characters arrive as surrogate pairs.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(
            parse("\"x\\uD834\\uDD1Ey\"").unwrap(),
            Json::Str("x\u{1D11E}y".into())
        );
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for bad in [
            "\"\\ud83d\"",        // lone high
            "\"\\ude00\"",        // lone low
            "\"\\ud83d\\u0041\"", // high followed by non-surrogate
            "\"\\ud83dx\"",       // high followed by raw text
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse("{\"a\": 1, \"b\": [\"x\"]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("b").unwrap().as_str(), None);
        let fields = v.as_obj().expect("object");
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "a");
        assert_eq!(v.get("b").unwrap().as_obj(), None);
    }
}
